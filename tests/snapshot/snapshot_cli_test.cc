// End-to-end snapshot flow through the CLI: gen -> build -> detect
// --snapshot must write reports byte-identical to detect --net, and the
// snapshot verbs must validate their arguments.

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "cli/cli.h"

namespace tpiin {
namespace {

std::string ReadFileToString(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class SnapshotCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("tpiin_snap_cli_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Run(const std::vector<std::string>& args,
                  Status* status_out = nullptr) {
    std::ostringstream out;
    Status status = RunCli(args, out);
    if (status_out != nullptr) {
      *status_out = status;
    } else {
      EXPECT_TRUE(status.ok()) << status.ToString();
    }
    return out.str();
  }

  std::string dir_;
};

TEST_F(SnapshotCliTest, BuildDetectReportsMatchEdgeListPath) {
  std::string data_dir = dir_ + "/data";
  std::string net_file = dir_ + "/net.edges";
  std::string snap_file = dir_ + "/net.snap";
  Run({"gen", "--out=" + data_dir, "--companies=150", "--p=0.02",
       "--plant=12", "--seed=11"});
  Run({"fuse", "--data=" + data_dir, "--out=" + net_file});

  std::string build_output =
      Run({"build", "--data=" + data_dir, "--out=" + snap_file});
  EXPECT_NE(build_output.find("snapshot written to"), std::string::npos);
  ASSERT_TRUE(std::filesystem::exists(snap_file));

  // Same detection, three ways: edge list, snapshot at 1 thread,
  // snapshot at 8 threads. Every report file must match byte for byte.
  std::string csv_dir = dir_ + "/reports_csv";
  std::string snap_dir = dir_ + "/reports_snap";
  std::string snap8_dir = dir_ + "/reports_snap8";
  Run({"detect", "--net=" + net_file, "--out=" + csv_dir,
       "--threads=1"});
  Run({"detect", "--snapshot=" + snap_file, "--out=" + snap_dir,
       "--threads=1"});
  Run({"detect", "--snapshot=" + snap_file, "--out=" + snap8_dir,
       "--threads=8"});
  for (const char* report :
       {"/susGroup.txt", "/susTrade.txt", "/report.txt"}) {
    const std::string expect = ReadFileToString(csv_dir + report);
    ASSERT_FALSE(expect.empty()) << report;
    EXPECT_EQ(ReadFileToString(snap_dir + report), expect) << report;
    EXPECT_EQ(ReadFileToString(snap8_dir + report), expect) << report;
  }
}

TEST_F(SnapshotCliTest, BuildFromEdgeListDetectsIdentically) {
  // The edge-list format drops fusion-time artifacts (member lists,
  // original-entity maps), so the two snapshots are not byte-identical —
  // but detection only depends on what the edge list carries, and the
  // reports must match exactly.
  std::string data_dir = dir_ + "/data";
  std::string net_file = dir_ + "/net.edges";
  Run({"gen", "--out=" + data_dir, "--companies=80", "--plant=8",
       "--seed=5"});
  Run({"fuse", "--data=" + data_dir, "--out=" + net_file});
  Run({"build", "--net=" + net_file, "--out=" + dir_ + "/b.snap"});

  Run({"detect", "--net=" + net_file, "--out=" + dir_ + "/r_net"});
  Run({"detect", "--snapshot=" + dir_ + "/b.snap",
       "--out=" + dir_ + "/r_snap"});
  for (const char* report :
       {"/susGroup.txt", "/susTrade.txt", "/report.txt"}) {
    EXPECT_EQ(ReadFileToString(dir_ + "/r_snap" + report),
              ReadFileToString(dir_ + "/r_net" + report))
        << report;
  }
}

TEST_F(SnapshotCliTest, SnapshotInfoPrintsDirectory) {
  std::string data_dir = dir_ + "/data";
  std::string snap_file = dir_ + "/net.snap";
  Run({"gen", "--out=" + data_dir, "--companies=60", "--seed=7"});
  Run({"build", "--data=" + data_dir, "--out=" + snap_file});

  std::string info = Run({"snapshot", "info", snap_file});
  EXPECT_NE(info.find("tpiin snapshot v1"), std::string::npos);
  EXPECT_NE(info.find("out_offsets"), std::string::npos);
  EXPECT_NE(info.find("wcc_component_of"), std::string::npos);
  EXPECT_NE(info.find("ok"), std::string::npos);
  EXPECT_EQ(info.find("MISMATCH"), std::string::npos);

  std::string unverified =
      Run({"snapshot", "info", snap_file, "--verify=false"});
  EXPECT_EQ(unverified.find("MISMATCH"), std::string::npos);
}

TEST_F(SnapshotCliTest, MiningCommandsRequireExactlyOneSource) {
  std::string data_dir = dir_ + "/data";
  std::string net_file = dir_ + "/net.edges";
  std::string snap_file = dir_ + "/net.snap";
  Run({"gen", "--out=" + data_dir, "--companies=60", "--seed=2"});
  Run({"fuse", "--data=" + data_dir, "--out=" + net_file});
  Run({"build", "--net=" + net_file, "--out=" + snap_file});

  for (const char* command : {"detect", "stats", "screen"}) {
    Status status;
    Run({command}, &status);
    EXPECT_TRUE(status.IsInvalidArgument()) << command << " with neither";
    Run({command, "--net=" + net_file, "--snapshot=" + snap_file},
        &status);
    EXPECT_TRUE(status.IsInvalidArgument()) << command << " with both";
  }
}

TEST_F(SnapshotCliTest, DetectRejectsCorruptSnapshot) {
  std::string data_dir = dir_ + "/data";
  std::string snap_file = dir_ + "/net.snap";
  Run({"gen", "--out=" + data_dir, "--companies=60", "--seed=4"});
  Run({"build", "--data=" + data_dir, "--out=" + snap_file});

  // Flip one byte inside the section directory (the bytes right after
  // the 64-byte header, always covered by directory_crc).
  {
    std::fstream file(snap_file,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(70);
    char byte = 0;
    file.read(&byte, 1);
    byte ^= 0x40;
    file.seekp(70);
    file.write(&byte, 1);
  }
  Status status;
  Run({"detect", "--snapshot=" + snap_file, "--out=" + dir_ + "/r"},
      &status);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
}

}  // namespace
}  // namespace tpiin

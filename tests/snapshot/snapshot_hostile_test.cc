// Hostile-file tests: every malformed snapshot must be rejected with a
// clean Status::Corruption — never a crash, never a garbage network.
// Mutations that invalidate the header or directory are re-checksummed
// so they reach the check under test instead of dying at the CRC gate.

#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32c.h"
#include "datagen/worked_example.h"
#include "fusion/pipeline.h"
#include "snapshot/format.h"
#include "snapshot/snapshot.h"

namespace tpiin {
namespace {

class SnapshotHostileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("tpiin_hostile_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::create_directories(dir_);

    Result<FusionOutput> fused = BuildTpiin(BuildWorkedExampleDataset());
    ASSERT_TRUE(fused.ok());
    path_ = dir_ + "/good.snap";
    ASSERT_TRUE(WriteSnapshot(fused->tpiin, path_).ok());
    std::ifstream in(path_, std::ios::binary);
    bytes_.assign((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
    ASSERT_FALSE(bytes_.empty());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string WriteBytes(const std::string& name,
                         const std::string& bytes) {
    std::string path = dir_ + "/" + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return path;
  }

  // Both consumers must reject the file the same way.
  void ExpectRejected(const std::string& path,
                      const std::string& expect_substring) {
    auto view = SnapshotView::Open(path);
    ASSERT_FALSE(view.ok()) << path;
    EXPECT_TRUE(view.status().IsCorruption()) << view.status().ToString();
    EXPECT_NE(view.status().ToString().find(expect_substring),
              std::string::npos)
        << "status: " << view.status().ToString();

    auto info = ReadSnapshotInfo(path);
    ASSERT_FALSE(info.ok()) << path;
    EXPECT_TRUE(info.status().IsCorruption()) << info.status().ToString();
  }

  SnapshotHeader Header() const {
    SnapshotHeader header;
    std::memcpy(&header, bytes_.data(), sizeof(header));
    return header;
  }

  // Stores `header` back into `bytes` with a valid header_crc, so the
  // mutation under test survives the checksum gate.
  static void PutHeader(std::string* bytes, SnapshotHeader header) {
    header.header_crc = 0;
    header.header_crc = Crc32c(&header, sizeof(header));
    std::memcpy(bytes->data(), &header, sizeof(header));
  }

  // Rewrites directory entry `index` and re-seals directory + header
  // CRCs around it.
  void PutEntry(std::string* bytes, size_t index,
                const SectionEntry& entry) const {
    SnapshotHeader header;
    std::memcpy(&header, bytes->data(), sizeof(header));
    std::memcpy(bytes->data() + sizeof(SnapshotHeader) +
                    index * sizeof(SectionEntry),
                &entry, sizeof(entry));
    header.directory_crc =
        Crc32c(bytes->data() + sizeof(SnapshotHeader),
               header.section_count * sizeof(SectionEntry));
    PutHeader(bytes, header);
  }

  SectionEntry Entry(size_t index) const {
    SectionEntry entry;
    std::memcpy(&entry,
                bytes_.data() + sizeof(SnapshotHeader) +
                    index * sizeof(SectionEntry),
                sizeof(entry));
    return entry;
  }

  size_t IndexOf(SectionId id) const {
    const SnapshotHeader header = Header();
    for (size_t i = 0; i < header.section_count; ++i) {
      if (Entry(i).id == static_cast<uint32_t>(id)) return i;
    }
    ADD_FAILURE() << "section id " << static_cast<uint32_t>(id)
                  << " not in directory";
    return 0;
  }

  // Overwrites payload bytes at `byte_off` within section `index` and
  // re-seals its CRC (plus directory + header) so the mutation reaches
  // the shape checks instead of dying at the checksum gate.
  void PutPayload(std::string* bytes, size_t index, uint64_t byte_off,
                  const void* value, size_t value_size) const {
    SectionEntry entry = Entry(index);
    std::memcpy(bytes->data() + entry.offset + byte_off, value,
                value_size);
    entry.crc = Crc32c(bytes->data() + entry.offset,
                       static_cast<size_t>(entry.size));
    PutEntry(bytes, index, entry);
  }

  // ReadSnapshotInfo stops at the header/directory validator, so
  // payload-level corruption is only caught by the mapping consumer —
  // with and without the checksum pass.
  void ExpectViewRejected(const std::string& path,
                          const std::string& expect_substring) {
    for (bool verify : {true, false}) {
      SnapshotOpenOptions options;
      options.verify_checksums = verify;
      auto view = SnapshotView::Open(path, options);
      ASSERT_FALSE(view.ok()) << path << " verify=" << verify;
      EXPECT_TRUE(view.status().IsCorruption())
          << view.status().ToString();
      EXPECT_NE(view.status().ToString().find(expect_substring),
                std::string::npos)
          << "status: " << view.status().ToString();
    }
  }

  std::string dir_;
  std::string path_;
  std::string bytes_;
};

TEST_F(SnapshotHostileTest, TruncatedFile) {
  for (size_t keep : {size_t{0}, size_t{17}, sizeof(SnapshotHeader),
                      bytes_.size() / 2, bytes_.size() - 1}) {
    std::string path =
        WriteBytes("trunc_" + std::to_string(keep) + ".snap",
                   bytes_.substr(0, keep));
    auto view = SnapshotView::Open(path);
    ASSERT_FALSE(view.ok()) << "keep=" << keep;
    EXPECT_TRUE(view.status().IsCorruption()) << view.status().ToString();
  }
}

TEST_F(SnapshotHostileTest, TrailingGarbage) {
  std::string padded = bytes_ + std::string(100, 'x');
  ExpectRejected(WriteBytes("padded.snap", padded), "truncated or padded");
}

TEST_F(SnapshotHostileTest, WrongMagic) {
  std::string bad = bytes_;
  bad[0] = 'X';
  ExpectRejected(WriteBytes("magic.snap", bad), "magic");
}

TEST_F(SnapshotHostileTest, UnsupportedVersion) {
  std::string bad = bytes_;
  SnapshotHeader header = Header();
  header.version = kSnapshotVersion + 7;
  PutHeader(&bad, header);
  ExpectRejected(WriteBytes("version.snap", bad), "version");
}

TEST_F(SnapshotHostileTest, ForeignEndianness) {
  std::string bad = bytes_;
  SnapshotHeader header = Header();
  header.endianness = 0x04030201u;
  PutHeader(&bad, header);
  ExpectRejected(WriteBytes("endian.snap", bad), "endian");
}

TEST_F(SnapshotHostileTest, CorruptHeaderCrc) {
  std::string bad = bytes_;
  bad[offsetof(SnapshotHeader, flags)] ^= 0x01;  // No CRC re-seal.
  auto view = SnapshotView::Open(WriteBytes("hdrcrc.snap", bad));
  ASSERT_FALSE(view.ok());
  EXPECT_TRUE(view.status().IsCorruption());
  EXPECT_NE(view.status().ToString().find("header"), std::string::npos);
}

TEST_F(SnapshotHostileTest, FlippedPayloadByte) {
  // Flip one byte in every section payload in turn; each flip must be
  // caught by that section's checksum.
  SnapshotHeader header = Header();
  for (uint32_t i = 0; i < header.section_count; ++i) {
    SectionEntry entry = Entry(i);
    if (entry.size == 0) continue;
    std::string bad = bytes_;
    bad[entry.offset + entry.size / 2] ^= 0x20;
    std::string path =
        WriteBytes("flip_" + std::to_string(entry.id) + ".snap", bad);
    auto view = SnapshotView::Open(path);
    ASSERT_FALSE(view.ok()) << "section id " << entry.id;
    EXPECT_TRUE(view.status().IsCorruption());
    EXPECT_NE(view.status().ToString().find("checksum"),
              std::string::npos)
        << view.status().ToString();

    // Info in verify mode flags the section rather than failing.
    auto info = ReadSnapshotInfo(path, /*verify_checksums=*/true);
    ASSERT_TRUE(info.ok()) << info.status().ToString();
    size_t mismatches = 0;
    for (const SnapshotSectionInfo& section : info->sections) {
      EXPECT_TRUE(section.crc_checked);
      mismatches += section.crc_checked && !section.crc_ok;
    }
    EXPECT_EQ(mismatches, 1u) << "section id " << entry.id;
  }
}

TEST_F(SnapshotHostileTest, OverlappingSections) {
  // Point section 1 into section 2's bytes (sizes unchanged, CRCs
  // re-sealed): the overlap check must fire.
  SectionEntry first = Entry(1);
  SectionEntry second = Entry(2);
  ASSERT_GT(second.size, 0u);
  std::string bad = bytes_;
  first.offset = second.offset;
  first.crc = Crc32c(bytes_.data() + second.offset,
                     static_cast<size_t>(first.size));
  PutEntry(&bad, 1, first);
  auto view = SnapshotView::Open(WriteBytes("overlap.snap", bad));
  ASSERT_FALSE(view.ok());
  EXPECT_TRUE(view.status().IsCorruption());
  EXPECT_NE(view.status().ToString().find("overlap"), std::string::npos)
      << view.status().ToString();
}

TEST_F(SnapshotHostileTest, SectionPastEndOfFile) {
  SectionEntry entry = Entry(1);
  std::string bad = bytes_;
  entry.offset = AlignSnapshotOffset(bytes_.size());
  PutEntry(&bad, 1, entry);
  auto view = SnapshotView::Open(WriteBytes("oob.snap", bad));
  ASSERT_FALSE(view.ok());
  EXPECT_TRUE(view.status().IsCorruption());
}

TEST_F(SnapshotHostileTest, MisalignedSectionOffset) {
  SectionEntry entry = Entry(1);
  std::string bad = bytes_;
  entry.offset += 4;  // Still in bounds, no longer 64-byte aligned.
  PutEntry(&bad, 1, entry);
  auto view = SnapshotView::Open(WriteBytes("misaligned.snap", bad));
  ASSERT_FALSE(view.ok());
  EXPECT_TRUE(view.status().IsCorruption());
}

TEST_F(SnapshotHostileTest, SizeCountMismatch) {
  SectionEntry entry = Entry(1);
  std::string bad = bytes_;
  entry.count += 1;  // size stays, so size != count * elem_size.
  PutEntry(&bad, 1, entry);
  auto view = SnapshotView::Open(WriteBytes("count.snap", bad));
  ASSERT_FALSE(view.ok());
  EXPECT_TRUE(view.status().IsCorruption());
}

TEST_F(SnapshotHostileTest, SizeCountWrappingMultiply) {
  // count=2^62 with elem_size 4 multiplies to 0 mod 2^64, so a
  // wrapping `size != count * elem_size` check would accept size=0
  // (which then passes every bounds/overlap/CRC check) and publish a
  // 2^62-element span. The divide-based check must reject it.
  const size_t index = IndexOf(SectionId::kPersonMembers);
  SectionEntry entry = Entry(index);
  ASSERT_EQ(entry.elem_size, 4u);
  std::string bad = bytes_;
  entry.count = uint64_t{1} << 62;
  entry.size = 0;
  entry.crc = Crc32c(bytes_.data(), 0);
  PutEntry(&bad, index, entry);
  ExpectRejected(WriteBytes("wrap.snap", bad), "size/count mismatch");
}

TEST_F(SnapshotHostileTest, NonMonotonicMemberOffsets) {
  // An interior offset above its successor wraps span lengths
  // (offsets[i+1] - offsets[i]) to ~2^64. Terminals stay valid and all
  // CRCs are re-sealed, so only the per-element pass can catch it.
  const size_t index = IndexOf(SectionId::kPersonMemberOffsets);
  ASSERT_GE(Entry(index).count, 3u);  // Need an interior element.
  const uint64_t huge = ~uint64_t{0};
  std::string bad = bytes_;
  PutPayload(&bad, index, sizeof(uint64_t), &huge, sizeof(huge));
  ExpectViewRejected(WriteBytes("monotone.snap", bad), "not monotone");
}

TEST_F(SnapshotHostileTest, NonMonotonicCsrOffsets) {
  const size_t index = IndexOf(SectionId::kOutOffsets);
  ASSERT_GE(Entry(index).count, 3u);
  const uint32_t huge = ~uint32_t{0};
  std::string bad = bytes_;
  PutPayload(&bad, index, sizeof(uint32_t), &huge, sizeof(huge));
  ExpectViewRejected(WriteBytes("csr_monotone.snap", bad),
                     "not monotone");
}

TEST_F(SnapshotHostileTest, InfluenceSplitOutOfRange) {
  const size_t index = IndexOf(SectionId::kOutInfluenceEnd);
  const uint32_t huge = ~uint32_t{0};
  std::string bad = bytes_;
  PutPayload(&bad, index, 0, &huge, sizeof(huge));
  ExpectViewRejected(WriteBytes("split.snap", bad), "influence split");
}

TEST_F(SnapshotHostileTest, DuplicateSectionId) {
  SectionEntry a = Entry(1);
  SectionEntry b = Entry(2);
  std::string bad = bytes_;
  b.id = a.id;
  PutEntry(&bad, 2, b);
  auto view = SnapshotView::Open(WriteBytes("dup.snap", bad));
  ASSERT_FALSE(view.ok());
  EXPECT_TRUE(view.status().IsCorruption());
}

TEST_F(SnapshotHostileTest, NotASnapshotAtAll) {
  std::string text(4096, 'a');
  auto view = SnapshotView::Open(WriteBytes("text.snap", text));
  ASSERT_FALSE(view.ok());
  EXPECT_TRUE(view.status().IsCorruption());
}

TEST_F(SnapshotHostileTest, MissingFile) {
  auto view = SnapshotView::Open(dir_ + "/does_not_exist.snap");
  EXPECT_FALSE(view.ok());
  auto info = ReadSnapshotInfo(dir_ + "/does_not_exist.snap");
  EXPECT_FALSE(info.ok());
}

}  // namespace
}  // namespace tpiin

// Round-trip equivalence of the binary snapshot: every column a
// snapshot-backed Tpiin serves must match the fused network it was
// written from, and detection from the mapped view must be bit-identical
// to detection from the in-memory network at any thread count.

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "datagen/province.h"
#include "datagen/worked_example.h"
#include "fusion/pipeline.h"
#include "graph/connected.h"
#include "snapshot/snapshot.h"

namespace tpiin {
namespace {

class SnapshotRoundtripTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("tpiin_snap_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return dir_ + "/" + name;
  }

  std::string dir_;
};

// A province small enough for a fast test but with every feature the
// format stores: syndicates, multi-component antecedent layer, weights,
// intra-syndicate trades (when the seed produces them).
Tpiin FuseProvince() {
  ProvinceConfig config = PaperProvinceConfig();
  config.num_companies = 300;
  config.num_legal_persons = 160;
  config.num_directors = 90;
  for (uint32_t& s : config.large_group_sizes) s = s / 8 + 4;
  config.trading_probability = 0.02;
  Result<Province> province = GenerateProvince(config);
  EXPECT_TRUE(province.ok()) << province.status().ToString();
  Result<FusionOutput> fused = BuildTpiin(province->dataset);
  EXPECT_TRUE(fused.ok()) << fused.status().ToString();
  return std::move(fused->tpiin);
}

void ExpectSameNetwork(const Tpiin& a, const Tpiin& b) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumArcs(), b.NumArcs());
  EXPECT_EQ(a.num_influence_arcs(), b.num_influence_arcs());

  for (NodeId v = 0; v < a.NumNodes(); ++v) {
    EXPECT_EQ(a.color(v), b.color(v)) << "node " << v;
    EXPECT_EQ(a.Label(v), b.Label(v)) << "node " << v;
    TpiinNode na = a.node(v);
    TpiinNode nb = b.node(v);
    ASSERT_EQ(na.person_members.size(), nb.person_members.size());
    for (size_t i = 0; i < na.person_members.size(); ++i) {
      EXPECT_EQ(na.person_members[i], nb.person_members[i]);
    }
    ASSERT_EQ(na.company_members.size(), nb.company_members.size());
    for (size_t i = 0; i < na.company_members.size(); ++i) {
      EXPECT_EQ(na.company_members[i], nb.company_members[i]);
    }
    ASSERT_EQ(na.internal_investments.size(),
              nb.internal_investments.size());
    for (size_t i = 0; i < na.internal_investments.size(); ++i) {
      EXPECT_EQ(na.internal_investments[i].investor,
                nb.internal_investments[i].investor);
      EXPECT_EQ(na.internal_investments[i].investee,
                nb.internal_investments[i].investee);
    }
  }

  for (ArcId id = 0; id < a.NumArcs(); ++id) {
    Arc arc_a = a.arc(id);
    Arc arc_b = b.arc(id);
    EXPECT_EQ(arc_a.src, arc_b.src) << "arc " << id;
    EXPECT_EQ(arc_a.dst, arc_b.dst) << "arc " << id;
    EXPECT_EQ(IsInfluenceArc(arc_a), IsInfluenceArc(arc_b))
        << "arc " << id;
    EXPECT_EQ(a.ArcWeight(id), b.ArcWeight(id)) << "arc " << id;
  }

  // CSR adjacency, both directions and both classes.
  for (NodeId v = 0; v < a.NumNodes(); ++v) {
    for (FrozenArcClass c :
         {FrozenArcClass::kAll, FrozenArcClass::kInfluence,
          FrozenArcClass::kTrading}) {
      auto out_a = a.frozen().OutClass(v, c);
      auto out_b = b.frozen().OutClass(v, c);
      ASSERT_EQ(out_a.size(), out_b.size()) << "node " << v;
      for (size_t i = 0; i < out_a.size(); ++i) {
        EXPECT_EQ(out_a.nodes[i], out_b.nodes[i]);
        EXPECT_EQ(out_a.arcs[i], out_b.arcs[i]);
      }
      auto in_a = a.frozen().InClass(v, c);
      auto in_b = b.frozen().InClass(v, c);
      ASSERT_EQ(in_a.size(), in_b.size()) << "node " << v;
      for (size_t i = 0; i < in_a.size(); ++i) {
        EXPECT_EQ(in_a.nodes[i], in_b.nodes[i]);
        EXPECT_EQ(in_a.arcs[i], in_b.arcs[i]);
      }
    }
  }

  ASSERT_EQ(a.intra_syndicate_trades().size(),
            b.intra_syndicate_trades().size());
  for (size_t i = 0; i < a.intra_syndicate_trades().size(); ++i) {
    EXPECT_EQ(a.intra_syndicate_trades()[i].syndicate_node,
              b.intra_syndicate_trades()[i].syndicate_node);
    EXPECT_EQ(a.intra_syndicate_trades()[i].seller,
              b.intra_syndicate_trades()[i].seller);
    EXPECT_EQ(a.intra_syndicate_trades()[i].buyer,
              b.intra_syndicate_trades()[i].buyer);
  }
}

void ExpectSameDetection(const Tpiin& a, const Tpiin& b,
                         uint32_t threads) {
  DetectorOptions options;
  options.num_threads = threads;
  Result<DetectionResult> ra = DetectSuspiciousGroups(a, options);
  Result<DetectionResult> rb = DetectSuspiciousGroups(b, options);
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  EXPECT_EQ(ra->num_simple, rb->num_simple);
  EXPECT_EQ(ra->num_complex, rb->num_complex);
  ASSERT_EQ(ra->suspicious_trades.size(), rb->suspicious_trades.size());
  for (size_t i = 0; i < ra->suspicious_trades.size(); ++i) {
    EXPECT_EQ(ra->suspicious_trades[i], rb->suspicious_trades[i]);
  }
  ASSERT_EQ(ra->groups.size(), rb->groups.size());
  for (size_t i = 0; i < ra->groups.size(); ++i) {
    EXPECT_EQ(ra->groups[i].Format(a), rb->groups[i].Format(b));
  }
}

TEST_F(SnapshotRoundtripTest, WorkedExampleAllColumns) {
  Result<FusionOutput> fused = BuildTpiin(BuildWorkedExampleDataset());
  ASSERT_TRUE(fused.ok());
  const std::string path = Path("we.snap");
  ASSERT_TRUE(WriteSnapshot(fused->tpiin, path).ok());

  auto view = SnapshotView::Open(path);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_FALSE((*view)->net().has_graph());
  ExpectSameNetwork(fused->tpiin, (*view)->net());
  ExpectSameDetection(fused->tpiin, (*view)->net(), 1);
}

TEST_F(SnapshotRoundtripTest, ProvinceAllColumnsAndDetection) {
  Tpiin net = FuseProvince();
  const std::string path = Path("prov.snap");
  ASSERT_TRUE(WriteSnapshot(net, path).ok());

  auto view = SnapshotView::Open(path);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  ExpectSameNetwork(net, (*view)->net());
  for (uint32_t threads : {1u, 8u}) {
    ExpectSameDetection(net, (*view)->net(), threads);
  }
}

TEST_F(SnapshotRoundtripTest, WccIndexMatchesRecomputation) {
  Tpiin net = FuseProvince();
  const std::string path = Path("wcc.snap");
  ASSERT_TRUE(WriteSnapshot(net, path).ok());

  auto view = SnapshotView::Open(path);
  ASSERT_TRUE(view.ok());
  const Tpiin& mapped = (*view)->net();
  ASSERT_TRUE(mapped.has_wcc_index());
  WccResult wcc = WeaklyConnectedComponents(net.frozen(),
                                            FrozenArcClass::kInfluence);
  EXPECT_EQ(mapped.NumWccComponents(), wcc.num_components);
  ASSERT_EQ(mapped.WccComponentOf().size(), wcc.component_of.size());
  for (size_t i = 0; i < wcc.component_of.size(); ++i) {
    EXPECT_EQ(mapped.WccComponentOf()[i], wcc.component_of[i]);
  }
}

TEST_F(SnapshotRoundtripTest, WithoutWccIndex) {
  Tpiin net = FuseProvince();
  const std::string path = Path("nowcc.snap");
  SnapshotWriteOptions options;
  options.include_wcc_index = false;
  ASSERT_TRUE(WriteSnapshot(net, path, options).ok());

  auto info = ReadSnapshotInfo(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->flags & kSnapshotFlagHasWccIndex, 0u);
  EXPECT_EQ(info->sections.size(), kSnapshotRequiredSections);

  auto view = SnapshotView::Open(path);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_FALSE((*view)->net().has_wcc_index());
  ExpectSameDetection(net, (*view)->net(), 1);
}

TEST_F(SnapshotRoundtripTest, OpenWithoutChecksumVerification) {
  Tpiin net = FuseProvince();
  const std::string path = Path("fast.snap");
  ASSERT_TRUE(WriteSnapshot(net, path).ok());
  SnapshotOpenOptions options;
  options.verify_checksums = false;
  auto view = SnapshotView::Open(path, options);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  ExpectSameNetwork(net, (*view)->net());
}

TEST_F(SnapshotRoundtripTest, WriteIsDeterministic) {
  Tpiin net = FuseProvince();
  const std::string p1 = Path("a.snap");
  const std::string p2 = Path("b.snap");
  ASSERT_TRUE(WriteSnapshot(net, p1).ok());
  ASSERT_TRUE(WriteSnapshot(net, p2).ok());
  std::ifstream f1(p1, std::ios::binary);
  std::ifstream f2(p2, std::ios::binary);
  std::string b1((std::istreambuf_iterator<char>(f1)),
                 std::istreambuf_iterator<char>());
  std::string b2((std::istreambuf_iterator<char>(f2)),
                 std::istreambuf_iterator<char>());
  ASSERT_FALSE(b1.empty());
  EXPECT_EQ(b1, b2);
}

TEST_F(SnapshotRoundtripTest, EmptyNetworkRefused) {
  Tpiin empty;
  Status status = WriteSnapshot(empty, Path("empty.snap"));
  EXPECT_FALSE(status.ok());
  EXPECT_FALSE(std::filesystem::exists(Path("empty.snap")));
}

TEST_F(SnapshotRoundtripTest, InfoMatchesFile) {
  Tpiin net = FuseProvince();
  const std::string path = Path("info.snap");
  ASSERT_TRUE(WriteSnapshot(net, path).ok());

  auto info = ReadSnapshotInfo(path, /*verify_checksums=*/true);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->version, kSnapshotVersion);
  EXPECT_EQ(info->file_size, std::filesystem::file_size(path));
  EXPECT_EQ(info->meta.num_nodes, net.NumNodes());
  EXPECT_EQ(info->meta.num_arcs, net.NumArcs());
  EXPECT_EQ(info->sections.size(), kSnapshotRequiredSections + 1);
  for (const SnapshotSectionInfo& section : info->sections) {
    EXPECT_TRUE(section.crc_checked) << section.name;
    EXPECT_TRUE(section.crc_ok) << section.name;
  }
  std::string text = FormatSnapshotInfo(*info);
  EXPECT_NE(text.find("out_offsets"), std::string::npos);
  EXPECT_NE(text.find("wcc_component_of"), std::string::npos);
}

}  // namespace
}  // namespace tpiin

// Fault injection through the snapshot writer and loader: a fault at
// any site must surface as a clean Status, never leave a partial or
// corrupt snapshot behind, and never poison later calls.

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "datagen/worked_example.h"
#include "fusion/pipeline.h"
#include "snapshot/snapshot.h"

namespace tpiin {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

class SnapshotFailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoints::Clear();
    dir_ = (std::filesystem::temp_directory_path() /
            ("tpiin_snap_fp_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::create_directories(dir_);
    Result<FusionOutput> fused = BuildTpiin(BuildWorkedExampleDataset());
    ASSERT_TRUE(fused.ok());
    net_ = std::move(fused->tpiin);
    path_ = dir_ + "/net.snap";
  }
  void TearDown() override {
    Failpoints::Clear();
    std::filesystem::remove_all(dir_);
  }

  std::string dir_;
  std::string path_;
  Tpiin net_;
};

TEST_F(SnapshotFailpointTest, WriteFaultLeavesNoFile) {
  for (const char* site :
       {"snapshot.write", "snapshot.write.section",
        "snapshot.write.commit"}) {
    ASSERT_TRUE(
        Failpoints::Configure(std::string(site) + ":ioerror").ok());
    Status status = WriteSnapshot(net_, path_);
    EXPECT_TRUE(status.IsIOError()) << site << ": " << status.ToString();
    EXPECT_FALSE(std::filesystem::exists(path_)) << site;
    // The crash-safe writer must not leave temp files around either.
    EXPECT_TRUE(std::filesystem::is_empty(dir_)) << site;
    Failpoints::Clear();
  }
}

TEST_F(SnapshotFailpointTest, WriteFaultPreservesPreviousSnapshot) {
  ASSERT_TRUE(WriteSnapshot(net_, path_).ok());
  const std::string before = Slurp(path_);
  ASSERT_FALSE(before.empty());

  for (const char* site :
       {"snapshot.write", "snapshot.write.section",
        "snapshot.write.commit"}) {
    ASSERT_TRUE(
        Failpoints::Configure(std::string(site) + ":error").ok());
    Status status = WriteSnapshot(net_, path_);
    EXPECT_TRUE(status.IsInternal()) << site;
    EXPECT_EQ(Slurp(path_), before)
        << site << " clobbered the previous snapshot";
    Failpoints::Clear();
  }

  // Still openable after all the failed overwrites.
  auto view = SnapshotView::Open(path_);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ((*view)->net().NumNodes(), net_.NumNodes());
}

TEST_F(SnapshotFailpointTest, MidSectionFaultDiscardsPartialWrite) {
  // Fire on the 10th section: the temp file already holds real payload
  // bytes when the fault hits.
  ASSERT_TRUE(
      Failpoints::Configure("snapshot.write.section:ioerror@10").ok());
  Status status = WriteSnapshot(net_, path_);
  EXPECT_TRUE(status.IsIOError()) << status.ToString();
  EXPECT_FALSE(std::filesystem::exists(path_));
  EXPECT_TRUE(std::filesystem::is_empty(dir_));
}

TEST_F(SnapshotFailpointTest, OpenFaultSurfacesAsStatus) {
  ASSERT_TRUE(WriteSnapshot(net_, path_).ok());
  for (const char* site : {"snapshot.open", "snapshot.open.validate"}) {
    ASSERT_TRUE(
        Failpoints::Configure(std::string(site) + ":corruption").ok());
    auto view = SnapshotView::Open(path_);
    EXPECT_FALSE(view.ok()) << site;
    EXPECT_TRUE(view.status().IsCorruption()) << view.status().ToString();
    Failpoints::Clear();
  }
}

TEST_F(SnapshotFailpointTest, InfoFaultSurfacesAsStatus) {
  ASSERT_TRUE(WriteSnapshot(net_, path_).ok());
  ASSERT_TRUE(Failpoints::Configure("snapshot.info:ioerror").ok());
  auto info = ReadSnapshotInfo(path_);
  EXPECT_FALSE(info.ok());
  EXPECT_TRUE(info.status().IsIOError()) << info.status().ToString();
}

TEST_F(SnapshotFailpointTest, RecoversAfterClear) {
  ASSERT_TRUE(Failpoints::Configure("snapshot.write:error").ok());
  EXPECT_FALSE(WriteSnapshot(net_, path_).ok());
  Failpoints::Clear();

  ASSERT_TRUE(WriteSnapshot(net_, path_).ok());
  auto view = SnapshotView::Open(path_);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ((*view)->net().NumArcs(), net_.NumArcs());
  auto info = ReadSnapshotInfo(path_);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->meta.num_nodes, net_.NumNodes());
}

TEST_F(SnapshotFailpointTest, NthHitSkipsEarlierWrites) {
  // error@2 on the commit site: first write lands, second fails and
  // leaves the first intact.
  ASSERT_TRUE(
      Failpoints::Configure("snapshot.write.commit:error@2").ok());
  ASSERT_TRUE(WriteSnapshot(net_, path_).ok());
  const std::string first = Slurp(path_);
  EXPECT_FALSE(WriteSnapshot(net_, path_).ok());
  EXPECT_EQ(Slurp(path_), first);
}

}  // namespace
}  // namespace tpiin

// Guards the README's quickstart code block: the snippet must keep
// compiling against the public API and producing the documented output.

#include <gtest/gtest.h>

#include "core/detector.h"
#include "fusion/pipeline.h"

namespace tpiin {
namespace {

TEST(ReadmeSnippetTest, QuickstartCodeBlockWorksAsDocumented) {
  // --- Verbatim from README.md (minus the puts). ---
  tpiin::RawDataset data;
  auto zhang = data.AddPerson("Zhang", tpiin::kRoleCeo);
  auto li = data.AddPerson("Li", tpiin::kRoleCeo);
  auto c1 = data.AddCompany("C1");
  auto c2 = data.AddCompany("C2");
  data.AddInfluence(zhang, c1, tpiin::InfluenceKind::kCeoOf, /*lp=*/true);
  data.AddInfluence(li, c2, tpiin::InfluenceKind::kCeoOf, /*lp=*/true);
  data.AddInterdependence(zhang, li,
                          tpiin::InterdependenceKind::kKinship);
  data.AddTrade(c1, c2);

  auto fused = tpiin::BuildTpiin(data);
  auto found = tpiin::DetectSuspiciousGroups(fused->tpiin);
  // --- End snippet. ---

  ASSERT_TRUE(fused.ok());
  ASSERT_TRUE(found.ok());
  ASSERT_EQ(found->groups.size(), 1u);
  EXPECT_EQ(
      found->groups[0].Format(fused->tpiin),
      "{Zhang+Li}: {{Zhang+Li}, C1 -> C2} | {{Zhang+Li}, C2} [simple]");
}

}  // namespace
}  // namespace tpiin

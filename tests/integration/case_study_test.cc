// End-to-end reproduction of the paper's three case studies (§3.1,
// Figs. 1-3): the MSG phase must flag each headline IAT as a suspicious
// trading relationship, and the ITE phase must reproduce the published
// tax adjustments.

#include <set>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "datagen/case_studies.h"
#include "fusion/pipeline.h"
#include "ite/alp.h"

namespace tpiin {
namespace {

class CaseStudyTest : public ::testing::TestWithParam<int> {
 protected:
  CaseStudy GetCase() const {
    switch (GetParam()) {
      case 1:
        return BuildCaseStudy1();
      case 2:
        return BuildCaseStudy2();
      default:
        return BuildCaseStudy3();
    }
  }
};

TEST_P(CaseStudyTest, MsgPhaseFlagsTheHeadlineIat) {
  CaseStudy cs = GetCase();
  auto fused = BuildTpiin(cs.dataset);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  auto result = DetectSuspiciousGroups(fused->tpiin);
  ASSERT_TRUE(result.ok());

  NodeId seller = fused->tpiin.NodeOfCompany(cs.expected_seller);
  NodeId buyer = fused->tpiin.NodeOfCompany(cs.expected_buyer);
  std::set<std::pair<NodeId, NodeId>> trades(
      result->suspicious_trades.begin(), result->suspicious_trades.end());
  EXPECT_TRUE(trades.count({seller, buyer}))
      << cs.title << ": headline IAT not flagged";
  EXPECT_GE(result->TotalGroups(), 1u);
}

TEST_P(CaseStudyTest, EveryGroupNamesTheAntecedentProofChain) {
  CaseStudy cs = GetCase();
  auto fused = BuildTpiin(cs.dataset);
  ASSERT_TRUE(fused.ok());
  auto result = DetectSuspiciousGroups(fused->tpiin);
  ASSERT_TRUE(result.ok());
  for (const SuspiciousGroup& group : result->groups) {
    // The explanation property the paper emphasizes: both trails start
    // at the shared antecedent and meet at the buyer.
    EXPECT_FALSE(group.trade_trail.empty());
    EXPECT_FALSE(group.partner_trail.empty());
    EXPECT_FALSE(group.Format(fused->tpiin).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(AllCases, CaseStudyTest, ::testing::Values(1, 2, 3));

TEST(CaseStudyIteTest, Case1TnmmAdjustment) {
  CaseStudy cs = BuildCaseStudy1();
  double adjustment = TnmmAdjustment(cs.revenue, 0.0, cs.normal_margin);
  EXPECT_NEAR(adjustment, 25.52e6, 1.0);
}

TEST(CaseStudyIteTest, Case2CupAdjustment) {
  CaseStudy cs = BuildCaseStudy2();
  double underpricing =
      (cs.market_price - cs.transfer_price) * cs.quantity;
  CupOptions options;
  EXPECT_NEAR(underpricing * options.tax_rate, 5000.0, 1e-9);
}

TEST(CaseStudyIteTest, Case3CostPlusAdjustment) {
  CaseStudy cs = BuildCaseStudy3();
  double adjustment =
      CostPlusAdjustment(cs.cost, cs.expense, cs.revenue, cs.normal_margin);
  // 19.0M vs the paper's 19.89M — within 5% (comparable sets differ).
  EXPECT_NEAR(adjustment, cs.expected_adjustment,
              0.05 * cs.expected_adjustment);
}

TEST(CaseStudyStructureTest, Case1GroupContainsTheBrotherSyndicate) {
  CaseStudy cs = BuildCaseStudy1();
  auto fused = BuildTpiin(cs.dataset);
  ASSERT_TRUE(fused.ok());
  auto result = DetectSuspiciousGroups(fused->tpiin);
  ASSERT_TRUE(result.ok());
  bool found_syndicate_anchor = false;
  for (const SuspiciousGroup& group : result->groups) {
    if (fused->tpiin.Label(group.antecedent) == "{L1+L2}") {
      found_syndicate_anchor = true;
    }
  }
  EXPECT_TRUE(found_syndicate_anchor)
      << "the kinship syndicate {L1+L2} should anchor a group";
}

TEST(CaseStudyStructureTest, Case2AnchorIsTheCommonInvestor) {
  CaseStudy cs = BuildCaseStudy2();
  auto fused = BuildTpiin(cs.dataset);
  ASSERT_TRUE(fused.ok());
  auto result = DetectSuspiciousGroups(fused->tpiin);
  ASSERT_TRUE(result.ok());
  std::set<std::string> anchors;
  for (const SuspiciousGroup& group : result->groups) {
    anchors.insert(std::string(fused->tpiin.Label(group.antecedent)));
  }
  // C4 (or its LP L4 above it) anchors the triangle.
  EXPECT_TRUE(anchors.count("C4") || anchors.count("L4"));
}

TEST(CaseStudyStructureTest, Case3AnchorIsTheDirectorSyndicate) {
  CaseStudy cs = BuildCaseStudy3();
  auto fused = BuildTpiin(cs.dataset);
  ASSERT_TRUE(fused.ok());
  auto result = DetectSuspiciousGroups(fused->tpiin);
  ASSERT_TRUE(result.ok());
  std::set<std::string> anchors;
  for (const SuspiciousGroup& group : result->groups) {
    anchors.insert(std::string(fused->tpiin.Label(group.antecedent)));
  }
  EXPECT_TRUE(anchors.count("{B3+B4+B5}"));
}

}  // namespace
}  // namespace tpiin

// Full two-phase pipeline on a synthetic province: generate -> plant ->
// fuse -> detect (MSG) -> ledger -> audit (ITE), with the paper's
// invariants checked along the way.

#include <set>

#include <gtest/gtest.h>

#include "core/baseline.h"
#include "core/detector.h"
#include "datagen/plant.h"
#include "datagen/province.h"
#include "fusion/pipeline.h"
#include "graph/topo.h"
#include "ite/audit.h"
#include "ite/ledger.h"

namespace tpiin {
namespace {

class EndToEndTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EndToEndTest, FullPipelineInvariantsHold) {
  ProvinceConfig config = SmallProvinceConfig(150, GetParam());
  config.trading_probability = 0.005;
  config.num_investment_cycles = GetParam() % 2;
  auto province = GenerateProvince(config);
  ASSERT_TRUE(province.ok());
  Rng rng(GetParam() * 31 + 1);
  std::vector<PlantedScheme> planted =
      PlantSuspiciousTrades(province->dataset, rng, 20);

  // Fusion invariants.
  auto fused = BuildTpiin(province->dataset);
  ASSERT_TRUE(fused.ok());
  const Tpiin& net = fused->tpiin;
  EXPECT_TRUE(IsDag(net.graph(), IsInfluenceArc));
  for (ArcId id = 0; id < net.graph().NumArcs(); ++id) {
    bool influence = IsInfluenceArc(net.graph().arc(id));
    EXPECT_EQ(influence, id < net.num_influence_arcs());
  }

  // MSG phase.
  auto detection = DetectSuspiciousGroups(net);
  ASSERT_TRUE(detection.ok());

  // Accuracy: identical to the root-anchored baseline (Table 1's 100%).
  BaselineOptions baseline_options;
  baseline_options.collect_groups = false;
  BaselineResult baseline = DetectBaseline(net, baseline_options);
  EXPECT_EQ(detection->num_simple, baseline.num_simple);
  EXPECT_EQ(detection->num_complex, baseline.num_complex);
  EXPECT_EQ(detection->suspicious_trades, baseline.suspicious_trades);

  // Planted schemes all flagged.
  std::set<std::pair<NodeId, NodeId>> suspicious(
      detection->suspicious_trades.begin(),
      detection->suspicious_trades.end());
  std::set<std::pair<CompanyId, CompanyId>> intra;
  for (const IntraSyndicateFinding& finding : detection->intra_syndicate) {
    intra.emplace(finding.seller, finding.buyer);
  }
  std::vector<std::pair<CompanyId, CompanyId>> iat_pairs;
  for (const PlantedScheme& scheme : planted) {
    iat_pairs.emplace_back(scheme.seller, scheme.buyer);
    bool flagged =
        suspicious.count({net.NodeOfCompany(scheme.seller),
                          net.NodeOfCompany(scheme.buyer)}) > 0 ||
        intra.count({scheme.seller, scheme.buyer}) > 0;
    EXPECT_TRUE(flagged) << "planted " << SchemeKindName(scheme.kind);
  }

  // ITE phase: the screened audit must recover every planted mispricing
  // while examining a strict subset of the ledger.
  Ledger ledger = GenerateLedger(province->dataset.trades(), iat_pairs);
  std::vector<std::pair<CompanyId, CompanyId>> suspicious_pairs;
  for (const auto& [seller_node, buyer_node] :
       detection->suspicious_trades) {
    for (CompanyId s : net.node(seller_node).company_members) {
      for (CompanyId b : net.node(buyer_node).company_members) {
        suspicious_pairs.emplace_back(s, b);
      }
    }
  }
  for (const auto& pair : intra) suspicious_pairs.push_back(pair);

  AuditReport screened = RunAudit(ledger, suspicious_pairs);
  AuditOptions full_options;
  full_options.examine_all = true;
  AuditReport full = RunAudit(ledger, {}, full_options);
  EXPECT_DOUBLE_EQ(screened.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(full.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(screened.total_adjustment, full.total_adjustment);
  if (!ledger.transactions.empty()) {
    EXPECT_LT(screened.ExaminedFraction(), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EndToEndTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(DeterminismTest, WholePipelineIsReproducible) {
  auto run = [](uint64_t seed) {
    ProvinceConfig config = SmallProvinceConfig(120, seed);
    config.trading_probability = 0.01;
    auto province = GenerateProvince(config);
    EXPECT_TRUE(province.ok());
    auto fused = BuildTpiin(province->dataset);
    EXPECT_TRUE(fused.ok());
    auto detection = DetectSuspiciousGroups(fused->tpiin);
    EXPECT_TRUE(detection.ok());
    return std::make_tuple(detection->num_simple, detection->num_complex,
                           detection->suspicious_trades);
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(std::get<2>(run(5)), std::get<2>(run(6)));
}

}  // namespace
}  // namespace tpiin

// End-to-end determinism gate for the parallel pipeline (ISSUE
// acceptance criterion): dataset → fuse → detect → score at
// num_threads=8 (plus a pooled-arena run) must produce exactly the
// same suspicious groups and exactly the same scores as num_threads=1.
// Any scheduling-dependent divergence anywhere in the stack surfaces
// here as a mismatch.

#include <gtest/gtest.h>

#include "core/arena_pool.h"
#include "core/detector.h"
#include "core/scoring.h"
#include "datagen/province.h"
#include "datagen/worked_example.h"
#include "fusion/pipeline.h"

namespace tpiin {
namespace {

struct PipelineRun {
  Tpiin net;
  DetectionResult detection;
  ScoringResult scoring;
};

PipelineRun RunPipeline(const RawDataset& dataset, uint32_t num_threads,
                        ArenaPool* arena_pool = nullptr) {
  FusionOptions fusion;
  fusion.num_threads = num_threads;
  auto fused = BuildTpiin(dataset, fusion);
  EXPECT_TRUE(fused.ok());

  DetectorOptions detect;
  detect.num_threads = num_threads;
  detect.arena_pool = arena_pool;
  auto detection = DetectSuspiciousGroups(fused->tpiin, detect);
  EXPECT_TRUE(detection.ok());

  ScoringResult scoring = ScoreDetection(fused->tpiin, *detection);
  return PipelineRun{std::move(fused->tpiin), std::move(*detection),
                     std::move(scoring)};
}

void ExpectRunsIdentical(const PipelineRun& expected,
                         const PipelineRun& actual) {
  EXPECT_EQ(actual.net.ToEdgeList(), expected.net.ToEdgeList());

  const DetectionResult& ed = expected.detection;
  const DetectionResult& ad = actual.detection;
  EXPECT_EQ(ad.num_simple, ed.num_simple);
  EXPECT_EQ(ad.num_complex, ed.num_complex);
  EXPECT_EQ(ad.num_cycle_groups, ed.num_cycle_groups);
  EXPECT_EQ(ad.num_trails, ed.num_trails);
  EXPECT_EQ(ad.suspicious_trades, ed.suspicious_trades);
  ASSERT_EQ(ad.groups.size(), ed.groups.size());
  for (size_t i = 0; i < ed.groups.size(); ++i) {
    EXPECT_EQ(ad.groups[i].members, ed.groups[i].members)
        << "group " << i;
  }

  // Scores must match exactly (same floating-point operations in the
  // same order), not merely within tolerance.
  const ScoringResult& es = expected.scoring;
  const ScoringResult& as = actual.scoring;
  ASSERT_EQ(as.group_scores.size(), es.group_scores.size());
  for (size_t i = 0; i < es.group_scores.size(); ++i) {
    EXPECT_EQ(as.group_scores[i], es.group_scores[i]) << "group " << i;
  }
  ASSERT_EQ(as.ranked_trades.size(), es.ranked_trades.size());
  for (size_t i = 0; i < es.ranked_trades.size(); ++i) {
    EXPECT_EQ(as.ranked_trades[i].seller, es.ranked_trades[i].seller);
    EXPECT_EQ(as.ranked_trades[i].buyer, es.ranked_trades[i].buyer);
    EXPECT_EQ(as.ranked_trades[i].score, es.ranked_trades[i].score)
        << "trade " << i;
    EXPECT_EQ(as.ranked_trades[i].group_count,
              es.ranked_trades[i].group_count);
  }
}

TEST(ParallelDeterminismTest, WorkedExampleEndToEnd) {
  RawDataset dataset = BuildWorkedExampleDataset();
  PipelineRun serial = RunPipeline(dataset, 1);
  PipelineRun parallel = RunPipeline(dataset, 8);
  ExpectRunsIdentical(serial, parallel);

  ArenaPool pool;
  PipelineRun pooled = RunPipeline(dataset, 8, &pool);
  ExpectRunsIdentical(serial, pooled);
  EXPECT_GT(pool.num_acquires(), 0u);
}

TEST(ParallelDeterminismTest, SeededProvinceEndToEnd) {
  for (uint64_t seed : {5u, 17u}) {
    ProvinceConfig config = SmallProvinceConfig(300, seed);
    config.trading_probability = 0.02;
    config.num_investment_cycles = 2;
    auto province = GenerateProvince(config);
    ASSERT_TRUE(province.ok());

    PipelineRun serial = RunPipeline(province->dataset, 1);
    PipelineRun parallel = RunPipeline(province->dataset, 8);
    ExpectRunsIdentical(serial, parallel);

    // A shared pool reused across seeds: recycled buffers must not
    // leak state between datasets.
    static ArenaPool pool;
    PipelineRun pooled = RunPipeline(province->dataset, 8, &pool);
    ExpectRunsIdentical(serial, pooled);
  }
}

}  // namespace
}  // namespace tpiin

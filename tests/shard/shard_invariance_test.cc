// The tentpole guarantee of the shard subsystem: shard build -> detect
// -> merge produces a merged report byte-identical to the unsharded
// pipeline over the same dataset, at ANY shard count and ANY thread
// count. The province here includes investment cycles so the hard cases
// ride along: SCC syndicates, intra-SCC trades, and the .gids sidecar
// translation of shard-local company ids back to global ones.

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "core/detector.h"
#include "core/scoring.h"
#include "datagen/province.h"
#include "fusion/pipeline.h"
#include "io/dataset_csv.h"
#include "shard/build.h"
#include "shard/canonical.h"
#include "shard/detect.h"
#include "shard/manifest.h"
#include "shard/merge.h"

namespace tpiin {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

class ShardInvarianceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("tpiin_shard_inv_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    data_dir_ = dir_ + "/data";
    std::filesystem::create_directories(data_dir_);

    // Small province with shareholding circles (SCC syndicates) and a
    // dense enough trading layer that some trades land inside them.
    ProvinceConfig config = SmallProvinceConfig(220, /*seed=*/11);
    config.num_investment_cycles = 6;
    config.trading_probability = 0.05;
    Result<Province> province = GenerateProvince(config);
    ASSERT_TRUE(province.ok()) << province.status().ToString();
    ASSERT_TRUE(SaveDatasetCsv(data_dir_, province->dataset).ok());

    // The unsharded reference must consume the same bytes the sharded
    // pipeline routes: the CSV files, not the in-memory dataset (CSV
    // serialises investment shares at %.6f, a lossy round trip).
    Result<RawDataset> dataset = LoadDatasetCsv(data_dir_);
    ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
    Result<FusionOutput> fused = BuildTpiin(*dataset);
    ASSERT_TRUE(fused.ok()) << fused.status().ToString();
    Result<DetectionResult> detection =
        DetectSuspiciousGroups(fused->tpiin);
    ASSERT_TRUE(detection.ok()) << detection.status().ToString();
    ScoringResult scoring = ScoreDetection(fused->tpiin, *detection);
    CanonicalReport canonical =
        BuildCanonicalReport(fused->tpiin, *detection, scoring);
    // The config must actually exercise the hard paths, or this test
    // proves identity only over the easy ones.
    ASSERT_GT(canonical.summary.intra, 0u)
        << "config produced no intra-SCC trades; raise cycles/p";
    ASSERT_GT(canonical.trades.size(), 0u);
    unsharded_ = RenderCanonicalReport(canonical);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  // Builds, detects, and merges at the given configuration; returns the
  // merged report bytes.
  std::string RunSharded(uint32_t shards, uint32_t detect_threads,
                         uint32_t shard_parallel) {
    const std::string tag = StringPrintf("s%u_t%u_p%u", shards,
                                         detect_threads, shard_parallel);
    const std::string shard_dir = dir_ + "/shards_" + tag;
    ShardBuildOptions build;
    build.num_shards = shards;
    Result<ShardManifest> manifest =
        BuildShards(data_dir_, shard_dir, build);
    EXPECT_TRUE(manifest.ok()) << manifest.status().ToString();
    if (!manifest.ok()) return "";

    ShardDetectOptions detect;
    detect.num_threads = detect_threads;
    detect.shard_parallel = shard_parallel;
    Result<ShardDetectStats> dstats = DetectShards(shard_dir, detect);
    EXPECT_TRUE(dstats.ok()) << dstats.status().ToString();
    if (!dstats.ok()) return "";
    EXPECT_FALSE(dstats->degraded);

    const std::string out = dir_ + "/merged_" + tag + ".txt";
    Result<ShardMergeStats> mstats = MergeShards(shard_dir, out);
    EXPECT_TRUE(mstats.ok()) << mstats.status().ToString();
    if (!mstats.ok()) return "";
    return Slurp(out);
  }

  std::string dir_;
  std::string data_dir_;
  std::string unsharded_;
};

TEST_F(ShardInvarianceTest, SingleShardMatchesUnsharded) {
  EXPECT_EQ(RunSharded(1, 1, 1), unsharded_);
}

TEST_F(ShardInvarianceTest, ShardCountInvariant) {
  EXPECT_EQ(RunSharded(2, 1, 1), unsharded_);
  EXPECT_EQ(RunSharded(8, 1, 1), unsharded_);
}

TEST_F(ShardInvarianceTest, ThreadCountInvariant) {
  EXPECT_EQ(RunSharded(8, 8, 1), unsharded_);
}

TEST_F(ShardInvarianceTest, ShardParallelInvariant) {
  EXPECT_EQ(RunSharded(8, 1, 4), unsharded_);
}

TEST_F(ShardInvarianceTest, MoreShardsThanComponentsLeavesEmptyShards) {
  // Shard count far above the component count: the extra shards are
  // flagged empty in the manifest, get no part files, and the merged
  // report is still byte-identical.
  const std::string shard_dir = dir_ + "/shards_many";
  ShardBuildOptions build;
  build.num_shards = 64;
  Result<ShardManifest> manifest =
      BuildShards(data_dir_, shard_dir, build);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  size_t empty = 0;
  for (const ShardEntry& entry : manifest->shards) {
    if (entry.empty) {
      ++empty;
      EXPECT_FALSE(std::filesystem::exists(
          shard_dir + "/" +
          ExpandShardPath(manifest->path_template, entry.shard)));
    }
  }
  ASSERT_TRUE(DetectShards(shard_dir, {}).ok());
  const std::string out = dir_ + "/merged_many.txt";
  ASSERT_TRUE(MergeShards(shard_dir, out).ok());
  EXPECT_EQ(Slurp(out), unsharded_);
}

TEST_F(ShardInvarianceTest, ManifestAccountingConsistent) {
  const std::string shard_dir = dir_ + "/shards_acct";
  ShardBuildOptions build;
  build.num_shards = 4;
  Result<ShardManifest> manifest =
      BuildShards(data_dir_, shard_dir, build);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();

  uint64_t routed_rows = 0;
  uint64_t persons = 0;
  uint64_t companies = 0;
  for (const ShardEntry& entry : manifest->shards) {
    routed_rows += entry.trade_rows;
    persons += entry.persons;
    companies += entry.companies;
  }
  EXPECT_EQ(persons, manifest->num_persons);
  EXPECT_EQ(companies, manifest->num_companies);
  EXPECT_EQ(routed_rows + manifest->cross_trade_rows,
            manifest->trade_rows);
  EXPECT_LE(manifest->cross_trade_pairs, manifest->cross_trade_rows);
}

}  // namespace
}  // namespace tpiin

// Shard planner units: the id index's dense fast path and fallback, the
// streaming union-find's component structure on a hand-built dataset,
// cross-trade accounting, balance determinism, and strictness against
// malformed input.

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "shard/plan.h"

namespace tpiin {
namespace {

class ShardPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("tpiin_plan_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void WriteTable(const std::string& name, const std::string& contents) {
    std::ofstream out(dir_ + "/" + name, std::ios::trunc);
    out << contents;
  }

  // Two antecedent islands: persons {0,1} + companies {0,1,2} linked
  // through influence/investment, and person {2} + company {3}. Company
  // 4 is an isolated singleton component.
  void WriteDataset() {
    WriteTable("persons.csv",
               "id,name,roles\n"
               "0,P0,legal_person\n"
               "1,P1,director\n"
               "2,P2,legal_person\n");
    WriteTable("companies.csv",
               "id,name\n"
               "0,C0\n1,C1\n2,C2\n3,C3\n4,C4\n");
    WriteTable("interdependence.csv",
               "person_a,person_b,kind\n"
               "0,1,kinship\n");
    WriteTable("influence.csv",
               "person,company,kind,legal_person\n"
               "0,0,legal_person,1\n"
               "1,1,director,0\n"
               "2,3,legal_person,1\n");
    WriteTable("investment.csv",
               "investor,investee,share\n"
               "0,2,0.6\n");
    WriteTable("trades.csv",
               "seller,buyer\n"
               "0,1\n"   // intra-component (island 1)
               "0,3\n"   // cross: island 1 -> island 2
               "3,4\n"   // cross: island 2 -> singleton
               "2,0\n"); // intra-component (island 1)
  }

  std::string dir_;
};

TEST(ShardIdIndexTest, DensePathAndLookup) {
  ShardIdIndex index;
  for (int64_t id = 0; id < 100; ++id) {
    ASSERT_TRUE(index.Add(id).ok());
  }
  EXPECT_EQ(index.size(), 100u);
  EXPECT_EQ(index.Lookup(0), 0);
  EXPECT_EQ(index.Lookup(99), 99);
  EXPECT_EQ(index.Lookup(100), -1);
  EXPECT_EQ(index.Lookup(-1), -1);
}

TEST(ShardIdIndexTest, GapFallsBackToMap) {
  ShardIdIndex index;
  ASSERT_TRUE(index.Add(0).ok());
  ASSERT_TRUE(index.Add(1).ok());
  ASSERT_TRUE(index.Add(7).ok());  // Gap: dense rows 0,1 migrate.
  ASSERT_TRUE(index.Add(3).ok());
  EXPECT_EQ(index.size(), 4u);
  EXPECT_EQ(index.Lookup(0), 0);
  EXPECT_EQ(index.Lookup(1), 1);
  EXPECT_EQ(index.Lookup(7), 2);
  EXPECT_EQ(index.Lookup(3), 3);
  EXPECT_EQ(index.Lookup(2), -1);
}

TEST(ShardIdIndexTest, DuplicateRejectedOnBothPaths) {
  ShardIdIndex dense;
  ASSERT_TRUE(dense.Add(0).ok());
  EXPECT_TRUE(dense.Add(0).IsCorruption());
  ShardIdIndex sparse;
  ASSERT_TRUE(sparse.Add(5).ok());
  EXPECT_TRUE(sparse.Add(5).IsCorruption());
}

TEST_F(ShardPlanTest, ComponentsAndCrossTrades) {
  WriteDataset();
  Result<ShardPlan> plan = PlanShards(dir_, {.num_shards = 2});
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ(plan->num_persons, 3u);
  EXPECT_EQ(plan->num_companies, 5u);
  EXPECT_EQ(plan->num_components, 3u);
  EXPECT_EQ(plan->trade_rows, 4u);
  EXPECT_EQ(plan->cross_trade_rows, 2u);

  // Island 1: persons 0,1 with companies 0,1,2. Island 2: person 2 with
  // company 3. Company 4 alone.
  EXPECT_EQ(plan->person_component[0], plan->person_component[1]);
  EXPECT_EQ(plan->person_component[0], plan->company_component[0]);
  EXPECT_EQ(plan->company_component[0], plan->company_component[1]);
  EXPECT_EQ(plan->company_component[0], plan->company_component[2]);
  EXPECT_EQ(plan->person_component[2], plan->company_component[3]);
  EXPECT_NE(plan->person_component[0], plan->person_component[2]);
  EXPECT_NE(plan->company_component[4], plan->company_component[0]);
  EXPECT_NE(plan->company_component[4], plan->company_component[3]);

  // Greedy balance puts the heaviest island alone on one shard.
  const uint32_t big = plan->ShardOfCompanyRow(0);
  EXPECT_NE(big, plan->ShardOfCompanyRow(3));
  EXPECT_EQ(plan->ShardOfCompanyRow(3), plan->ShardOfCompanyRow(4));
  const uint64_t total_weight =
      plan->shard_weight[0] + plan->shard_weight[1];
  // Entities (8) + relation rows (5) + intra-component trades (2).
  EXPECT_EQ(total_weight, 8u + 5u + 2u);
}

TEST_F(ShardPlanTest, Deterministic) {
  WriteDataset();
  Result<ShardPlan> a = PlanShards(dir_, {.num_shards = 4});
  Result<ShardPlan> b = PlanShards(dir_, {.num_shards = 4});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->component_shard, b->component_shard);
  EXPECT_EQ(a->shard_weight, b->shard_weight);
  EXPECT_EQ(a->person_component, b->person_component);
  EXPECT_EQ(a->company_component, b->company_component);
}

TEST_F(ShardPlanTest, ZeroShardsInvalid) {
  WriteDataset();
  EXPECT_TRUE(PlanShards(dir_, {.num_shards = 0}).status()
                  .IsInvalidArgument());
}

TEST_F(ShardPlanTest, DanglingTradeEndpointIsCorruption) {
  WriteDataset();
  WriteTable("trades.csv", "seller,buyer\n0,99\n");
  Result<ShardPlan> plan = PlanShards(dir_, {.num_shards = 2});
  ASSERT_FALSE(plan.ok());
  EXPECT_TRUE(plan.status().IsCorruption()) << plan.status().ToString();
}

TEST_F(ShardPlanTest, WrongColumnCountIsCorruption) {
  WriteDataset();
  WriteTable("investment.csv", "investor,investee,share\n0,2\n");
  EXPECT_TRUE(
      PlanShards(dir_, {.num_shards = 2}).status().IsCorruption());
}

TEST_F(ShardPlanTest, MissingTableFails) {
  WriteDataset();
  std::filesystem::remove(dir_ + "/influence.csv");
  EXPECT_FALSE(PlanShards(dir_, {.num_shards = 2}).ok());
}

}  // namespace
}  // namespace tpiin

// End-to-end `tpiin shard build / detect / merge` through the CLI
// dispatcher, gating the user-facing byte-identity claim: the merged
// report equals the `detect --out` ranked report over the same dataset,
// and budget degradation propagates as exit code 2.

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cli/cli.h"

namespace tpiin {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

class ShardCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("tpiin_shard_cli_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Run(const std::vector<std::string>& args,
                  Status* status_out = nullptr, int* exit_code = nullptr) {
    std::ostringstream out;
    Status status = RunCli(args, out, exit_code);
    if (status_out != nullptr) {
      *status_out = status;
    } else {
      EXPECT_TRUE(status.ok()) << status.ToString();
    }
    return out.str();
  }

  std::string dir_;
};

TEST_F(ShardCliTest, BuildDetectMergeMatchesUnshardedDetect) {
  const std::string data = dir_ + "/data";
  const std::string snap = dir_ + "/net.snap";
  const std::string shards = dir_ + "/shards";
  const std::string merged = dir_ + "/merged.txt";
  const std::string out_dir = dir_ + "/detect_out";

  Run({"gen", "--out=" + data, "--companies=200", "--p=0.03",
       "--seed=13"});
  Run({"build", "--data=" + data, "--out=" + snap});
  Run({"detect", "--snapshot=" + snap, "--out=" + out_dir});

  std::string build_output = Run({"shard", "build", "--data=" + data,
                                  "--out=" + shards, "--shards=4"});
  EXPECT_NE(build_output.find("shards populated"), std::string::npos)
      << build_output;
  Run({"shard", "detect", "--dir=" + shards});
  Run({"shard", "merge", "--dir=" + shards, "--out=" + merged});

  const std::string unsharded = Slurp(out_dir + "/ranked.txt");
  ASSERT_FALSE(unsharded.empty());
  EXPECT_EQ(Slurp(merged), unsharded);
}

TEST_F(ShardCliTest, DegradedDetectExitsTwoAndMergePropagates) {
  const std::string data = dir_ + "/data";
  const std::string shards = dir_ + "/shards";
  Run({"gen", "--out=" + data, "--companies=200", "--p=0.03",
       "--seed=13"});
  Run({"shard", "build", "--data=" + data, "--out=" + shards,
       "--shards=2"});

  // A structural cap that always binds: every subTPIIN exceeds one node.
  int exit_code = 0;
  Status status;
  std::string output = Run({"shard", "detect", "--dir=" + shards,
                            "--max-sub-nodes=1"},
                           &status, &exit_code);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(exit_code, 2) << output;

  exit_code = 0;
  output = Run({"shard", "merge", "--dir=" + shards,
                "--out=" + dir_ + "/merged.txt"},
               &status, &exit_code);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(exit_code, 2) << output;
}

TEST_F(ShardCliTest, UsageErrors) {
  Status status;
  Run({"shard"}, &status);
  EXPECT_TRUE(status.IsInvalidArgument());
  Run({"shard", "frobnicate"}, &status);
  EXPECT_TRUE(status.IsInvalidArgument());
  Run({"shard", "build", "--out=" + dir_ + "/x"}, &status);
  EXPECT_TRUE(status.IsInvalidArgument());
  Run({"shard", "detect", "--dir=" + dir_ + "/nonexistent"}, &status);
  EXPECT_FALSE(status.ok());
  Run({"shard", "merge", "--dir=" + dir_ + "/nonexistent",
       "--out=" + dir_ + "/m.txt"},
      &status);
  EXPECT_FALSE(status.ok());
}

}  // namespace
}  // namespace tpiin

// Shard manifest round-trip and hostile-file suite: MANIFEST.shards is
// the commit point of a sharded build, so every malformed variant must
// be rejected with a clean Status — never a crash, never a half-loaded
// manifest steering consumers at missing or foreign part files.

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32c.h"
#include "common/string_util.h"
#include "shard/manifest.h"

namespace tpiin {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// Re-stamps the CRC trailer so a mutation reaches the parse checks
// instead of dying at the checksum gate.
std::string Restamp(std::string body_with_old_crc) {
  const size_t crc_at = body_with_old_crc.rfind("crc ");
  body_with_old_crc.resize(crc_at);
  const uint32_t crc =
      Crc32c(body_with_old_crc.data(), body_with_old_crc.size());
  body_with_old_crc += StringPrintf("crc %08x\n", crc);
  return body_with_old_crc;
}

class ShardManifestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("tpiin_manifest_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::create_directories(dir_);
    path_ = dir_ + "/" + kShardManifestName;

    good_.num_shards = 3;
    good_.num_persons = 100;
    good_.num_companies = 120;
    good_.trade_rows = 500;
    good_.cross_trade_rows = 40;
    good_.cross_trade_pairs = 37;
    for (uint32_t s = 0; s < 3; ++s) {
      ShardEntry entry;
      entry.shard = s;
      entry.empty = s == 2;
      if (!entry.empty) {
        entry.nodes = 70 + s;
        entry.arcs = 200 + s;
        entry.influence_arcs = 90;
        entry.trading_arcs = 230;
        entry.intra_trades = s;
        entry.persons = 50;
        entry.companies = 60;
        entry.trade_rows = 230;
        entry.snapshot_bytes = 4096;
      }
      good_.shards.push_back(entry);
    }
    ASSERT_TRUE(WriteShardManifest(path_, good_).ok());
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void WriteRaw(const std::string& contents) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << contents;
  }

  void ExpectCorrupt(const std::string& contents) {
    WriteRaw(contents);
    Result<ShardManifest> read = ReadShardManifest(path_);
    ASSERT_FALSE(read.ok()) << "accepted: " << contents.substr(0, 80);
    EXPECT_TRUE(read.status().IsCorruption()) << read.status().ToString();
  }

  std::string dir_;
  std::string path_;
  ShardManifest good_;
};

TEST(ExpandShardPathTest, PadsAndSubstitutes) {
  EXPECT_EQ(ExpandShardPath("part-{shard}.tpiin", 0), "part-00000.tpiin");
  EXPECT_EQ(ExpandShardPath("part-{shard}.tpiin", 42), "part-00042.tpiin");
  EXPECT_EQ(ExpandShardPath("part-{shard}.tpiin", 123456),
            "part-123456.tpiin");
  EXPECT_EQ(ExpandShardPath("no-placeholder", 7), "no-placeholder");
}

TEST_F(ShardManifestTest, RoundTrip) {
  Result<ShardManifest> read = ReadShardManifest(path_);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->num_shards, good_.num_shards);
  EXPECT_EQ(read->path_template, good_.path_template);
  EXPECT_EQ(read->num_persons, good_.num_persons);
  EXPECT_EQ(read->num_companies, good_.num_companies);
  EXPECT_EQ(read->trade_rows, good_.trade_rows);
  EXPECT_EQ(read->cross_trade_rows, good_.cross_trade_rows);
  EXPECT_EQ(read->cross_trade_pairs, good_.cross_trade_pairs);
  ASSERT_EQ(read->shards.size(), 3u);
  for (uint32_t s = 0; s < 3; ++s) {
    EXPECT_EQ(read->shards[s].shard, s);
    EXPECT_EQ(read->shards[s].empty, good_.shards[s].empty);
    EXPECT_EQ(read->shards[s].nodes, good_.shards[s].nodes);
    EXPECT_EQ(read->shards[s].trading_arcs, good_.shards[s].trading_arcs);
    EXPECT_EQ(read->shards[s].snapshot_bytes,
              good_.shards[s].snapshot_bytes);
  }
}

TEST_F(ShardManifestTest, MissingFileIsNotFound) {
  Result<ShardManifest> read = ReadShardManifest(dir_ + "/absent");
  ASSERT_FALSE(read.ok());
  EXPECT_TRUE(read.status().IsNotFound());
}

TEST_F(ShardManifestTest, EveryTruncationRejected) {
  const std::string contents = Slurp(path_);
  for (size_t len = 0; len < contents.size(); ++len) {
    ExpectCorrupt(contents.substr(0, len));
  }
}

TEST_F(ShardManifestTest, EveryBitFlipInBodyRejected) {
  const std::string contents = Slurp(path_);
  // Flip one bit per byte (cheap but covers every byte position); any
  // change to the body must trip the CRC, any change to the trailer must
  // trip the trailer parse or mismatch.
  for (size_t i = 0; i < contents.size(); ++i) {
    std::string mutated = contents;
    mutated[i] ^= 0x01;
    WriteRaw(mutated);
    Result<ShardManifest> read = ReadShardManifest(path_);
    EXPECT_FALSE(read.ok()) << "bit flip at byte " << i << " accepted";
  }
}

TEST_F(ShardManifestTest, AppendedJunkRejected) {
  ExpectCorrupt(Slurp(path_) + "shard 3 extra\n");
}

TEST_F(ShardManifestTest, EscapingTemplateRejected) {
  // A template with a path separator or parent reference would let a
  // tampered manifest address files outside its directory.
  for (const char* hostile :
       {"../{shard}.tpiin", "sub/{shard}.tpiin", "/abs/{shard}.tpiin",
        "{shard}..tpiin/.."}) {
    std::string contents = Slurp(path_);
    const size_t line_at = contents.find("template ");
    const size_t line_end = contents.find('\n', line_at);
    contents = contents.substr(0, line_at) + "template " + hostile +
               contents.substr(line_end);
    ExpectCorrupt(Restamp(contents));
  }
}

TEST_F(ShardManifestTest, TemplateWithoutPlaceholderRejected) {
  std::string contents = Slurp(path_);
  const size_t line_at = contents.find("template ");
  const size_t line_end = contents.find('\n', line_at);
  contents = contents.substr(0, line_at) + "template part.tpiin" +
             contents.substr(line_end);
  ExpectCorrupt(Restamp(contents));
}

TEST_F(ShardManifestTest, ShardLinesOutOfOrderRejected) {
  std::string contents = Slurp(path_);
  const size_t first = contents.find("shard 0 ");
  const size_t second = contents.find("shard 1 ");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  const size_t first_end = contents.find('\n', first);
  const size_t second_end = contents.find('\n', second);
  const std::string line0 = contents.substr(first, first_end - first);
  const std::string line1 = contents.substr(second, second_end - second);
  contents.replace(second, second_end - second, line0);
  contents.replace(first, first_end - first, line1);
  ExpectCorrupt(Restamp(contents));
}

TEST_F(ShardManifestTest, EmptyShardWithCountsRejected) {
  std::string contents = Slurp(path_);
  const size_t at = contents.find("shard 2 empty=1");
  ASSERT_NE(at, std::string::npos);
  contents.replace(at, std::string("shard 2 empty=1 nodes=0").size(),
                   "shard 2 empty=1 nodes=9");
  ExpectCorrupt(Restamp(contents));
}

TEST_F(ShardManifestTest, ImplausibleShardCountRejected) {
  std::string contents = Slurp(path_);
  const size_t at = contents.find("shards 3");
  contents.replace(at, std::string("shards 3").size(), "shards 200000");
  ExpectCorrupt(Restamp(contents));
}

TEST_F(ShardManifestTest, WriterValidatesShape) {
  ShardManifest bad = good_;
  bad.shards.pop_back();
  EXPECT_TRUE(WriteShardManifest(path_, bad).IsInvalidArgument());
  bad = good_;
  bad.path_template = "no-placeholder.tpiin";
  EXPECT_TRUE(WriteShardManifest(path_, bad).IsInvalidArgument());
}

}  // namespace
}  // namespace tpiin

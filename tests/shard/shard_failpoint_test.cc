// Crash safety of the sharded pipeline under fault injection: a fault
// at any stage must surface as a clean Status, leave previously
// completed artifacts valid, and never leave a manifest that commits a
// half-built directory. Recovery is re-running the same command.

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "datagen/province.h"
#include "io/dataset_csv.h"
#include "shard/build.h"
#include "shard/detect.h"
#include "shard/manifest.h"
#include "shard/merge.h"
#include "snapshot/snapshot.h"

namespace tpiin {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

class ShardFailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoints::Clear();
    dir_ = (std::filesystem::temp_directory_path() /
            ("tpiin_shard_fp_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    data_dir_ = dir_ + "/data";
    shard_dir_ = dir_ + "/shards";
    std::filesystem::create_directories(data_dir_);
    ProvinceConfig config = SmallProvinceConfig(150, /*seed=*/5);
    config.trading_probability = 0.03;
    Result<Province> province = GenerateProvince(config);
    ASSERT_TRUE(province.ok()) << province.status().ToString();
    ASSERT_TRUE(SaveDatasetCsv(data_dir_, province->dataset).ok());
    build_.num_shards = 4;
  }
  void TearDown() override {
    Failpoints::Clear();
    std::filesystem::remove_all(dir_);
  }

  std::string ManifestPath() const {
    return shard_dir_ + "/" + std::string(kShardManifestName);
  }

  std::string dir_;
  std::string data_dir_;
  std::string shard_dir_;
  ShardBuildOptions build_;
};

TEST_F(ShardFailpointTest, PlanScanFaultFailsCleanly) {
  ASSERT_TRUE(Failpoints::Configure("shard.plan.scan:ioerror").ok());
  Result<ShardManifest> manifest =
      BuildShards(data_dir_, shard_dir_, build_);
  ASSERT_FALSE(manifest.ok());
  EXPECT_TRUE(manifest.status().IsIOError());
  EXPECT_FALSE(std::filesystem::exists(ManifestPath()));
}

TEST_F(ShardFailpointTest, FuseCrashLeavesPriorShardsValidAndNoManifest) {
  // Fail fusing the second shard: shard 0's snapshot is already on disk
  // and must still open; the manifest must be absent so every consumer
  // refuses the directory.
  ASSERT_TRUE(Failpoints::Configure("shard.fuse:error@2").ok());
  Result<ShardManifest> manifest =
      BuildShards(data_dir_, shard_dir_, build_);
  ASSERT_FALSE(manifest.ok());
  EXPECT_FALSE(std::filesystem::exists(ManifestPath()));

  const std::string part0 = shard_dir_ + "/part-00000.tpiin";
  ASSERT_TRUE(std::filesystem::exists(part0));
  Result<std::unique_ptr<SnapshotView>> view = SnapshotView::Open(part0);
  EXPECT_TRUE(view.ok()) << view.status().ToString();

  // Consumers refuse a manifest-less directory outright.
  EXPECT_TRUE(DetectShards(shard_dir_, {}).status().IsNotFound());
  EXPECT_TRUE(MergeShards(shard_dir_, dir_ + "/merged.txt")
                  .status()
                  .IsNotFound());

  // Recovery: the same command, re-run clean, commits.
  Failpoints::Clear();
  Result<ShardManifest> retry =
      BuildShards(data_dir_, shard_dir_, build_);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_TRUE(std::filesystem::exists(ManifestPath()));
  ASSERT_TRUE(DetectShards(shard_dir_, {}).ok());
  EXPECT_TRUE(MergeShards(shard_dir_, dir_ + "/merged.txt").ok());
}

TEST_F(ShardFailpointTest, ManifestWriteFaultLeavesNoManifest) {
  ASSERT_TRUE(Failpoints::Configure("shard.manifest.write:ioerror").ok());
  Result<ShardManifest> manifest =
      BuildShards(data_dir_, shard_dir_, build_);
  ASSERT_FALSE(manifest.ok());
  EXPECT_TRUE(manifest.status().IsIOError());
  EXPECT_FALSE(std::filesystem::exists(ManifestPath()));
}

TEST_F(ShardFailpointTest, GidsWriteFaultFailsBuild) {
  ASSERT_TRUE(Failpoints::Configure("shard.gids.write:ioerror").ok());
  Result<ShardManifest> manifest =
      BuildShards(data_dir_, shard_dir_, build_);
  ASSERT_FALSE(manifest.ok());
  EXPECT_FALSE(std::filesystem::exists(ManifestPath()));
}

TEST_F(ShardFailpointTest, DetectFaultKeepsPriorResultsAndRecovers) {
  Result<ShardManifest> manifest =
      BuildShards(data_dir_, shard_dir_, build_);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();

  ASSERT_TRUE(Failpoints::Configure("shard.detect:error@2").ok());
  Result<ShardDetectStats> stats = DetectShards(shard_dir_, {});
  ASSERT_FALSE(stats.ok());
  // The first shard's result committed before the fault and is already
  // a valid, CRC'd file.
  const std::string result0 =
      ShardResultPath(shard_dir_, *manifest, /*shard=*/0);
  ASSERT_TRUE(std::filesystem::exists(result0));
  EXPECT_TRUE(ParseShardResult(Slurp(result0), result0, 0).ok());

  // Merge over the incomplete detect run must fail, not fabricate.
  EXPECT_FALSE(MergeShards(shard_dir_, dir_ + "/merged.txt").ok());

  Failpoints::Clear();
  ASSERT_TRUE(DetectShards(shard_dir_, {}).ok());
  EXPECT_TRUE(MergeShards(shard_dir_, dir_ + "/merged.txt").ok());
}

TEST_F(ShardFailpointTest, MergeFaultLeavesNoOutput) {
  ASSERT_TRUE(BuildShards(data_dir_, shard_dir_, build_).ok());
  ASSERT_TRUE(DetectShards(shard_dir_, {}).ok());
  ASSERT_TRUE(Failpoints::Configure("shard.merge:ioerror").ok());
  const std::string out = dir_ + "/merged.txt";
  EXPECT_FALSE(MergeShards(shard_dir_, out).ok());
  EXPECT_FALSE(std::filesystem::exists(out));
  Failpoints::Clear();
  EXPECT_TRUE(MergeShards(shard_dir_, out).ok());
  EXPECT_TRUE(std::filesystem::exists(out));
}

TEST_F(ShardFailpointTest, StaleResultCountsAreRefused) {
  // Detect results carry per-shard counts cross-checked against the
  // manifest, so a well-formed result file left behind by a run over
  // different data (valid CRC, wrong counts) must not silently merge.
  Result<ShardManifest> manifest =
      BuildShards(data_dir_, shard_dir_, build_);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  ASSERT_TRUE(DetectShards(shard_dir_, {}).ok());

  uint32_t victim = 0;
  while (manifest->shards[victim].empty) ++victim;
  const std::string path = ShardResultPath(shard_dir_, *manifest, victim);
  Result<CanonicalReport> report =
      ParseShardResult(Slurp(path), path, victim);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  report->summary.total_trading_arcs += 1;
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << SerializeShardResult(victim, *report);
  }
  Result<ShardMergeStats> merged =
      MergeShards(shard_dir_, dir_ + "/merged.txt");
  ASSERT_FALSE(merged.ok());
  EXPECT_TRUE(merged.status().IsCorruption())
      << merged.status().ToString();
}

}  // namespace
}  // namespace tpiin

// Per-shard result files carry the canonical findings between `shard
// detect` and `shard merge`; the serialization must round-trip doubles
// bit-exactly and labels byte-exactly (including tabs, newlines and
// backslashes), and the strict parser must reject every torn or
// tampered variant.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "shard/canonical.h"
#include "shard/detect.h"

namespace tpiin {
namespace {

CanonicalReport SampleReport() {
  CanonicalReport report;
  report.summary.subtpiins = 3;
  report.summary.trails = 17;
  report.summary.complex_groups = 2;
  report.summary.simple_groups = 4;
  report.summary.circle_groups = 1;
  report.summary.intra = 2;
  report.summary.suspicious_trades = 3;
  report.summary.total_trading_arcs = 40;
  report.summary.skipped_subs = 0;

  // Scores exercise exact-double transport: a subnormal-ish product, a
  // value with no short decimal form, and 1.0.
  report.trades.push_back(
      {0.1 + 0.2, 5, "Company 1", "Company\t2"});
  report.trades.push_back(
      {std::ldexp(1.0, -40), 1, "A \\ B", "line\nbreak"});
  report.trades.push_back({1.0, 2, "S", "B"});

  report.intra.push_back({7, 9, "{P1+P2}", {7, 8, 9}});
  report.intra.push_back({12, 12, "syn\twith\ttabs", {12}});
  return report;
}

TEST(ShardResultTest, RoundTripExact) {
  const CanonicalReport report = SampleReport();
  const std::string bytes = SerializeShardResult(42, report);
  Result<CanonicalReport> parsed = ParseShardResult(bytes, "mem", 42);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();

  EXPECT_EQ(parsed->summary.subtpiins, report.summary.subtpiins);
  EXPECT_EQ(parsed->summary.trails, report.summary.trails);
  EXPECT_EQ(parsed->summary.complex_groups,
            report.summary.complex_groups);
  EXPECT_EQ(parsed->summary.simple_groups, report.summary.simple_groups);
  EXPECT_EQ(parsed->summary.circle_groups, report.summary.circle_groups);
  EXPECT_EQ(parsed->summary.intra, report.summary.intra);
  EXPECT_EQ(parsed->summary.suspicious_trades,
            report.summary.suspicious_trades);
  EXPECT_EQ(parsed->summary.total_trading_arcs,
            report.summary.total_trading_arcs);
  EXPECT_FALSE(parsed->summary.degraded);
  EXPECT_FALSE(parsed->summary.truncated);

  ASSERT_EQ(parsed->trades.size(), report.trades.size());
  for (size_t i = 0; i < report.trades.size(); ++i) {
    // Bit-exact double transport is what makes the merged ranking
    // byte-identical to the unsharded one.
    EXPECT_EQ(parsed->trades[i].score, report.trades[i].score) << i;
    EXPECT_EQ(parsed->trades[i].group_count, report.trades[i].group_count);
    EXPECT_EQ(parsed->trades[i].seller, report.trades[i].seller) << i;
    EXPECT_EQ(parsed->trades[i].buyer, report.trades[i].buyer) << i;
  }
  ASSERT_EQ(parsed->intra.size(), report.intra.size());
  for (size_t i = 0; i < report.intra.size(); ++i) {
    EXPECT_EQ(parsed->intra[i].seller, report.intra[i].seller);
    EXPECT_EQ(parsed->intra[i].buyer, report.intra[i].buyer);
    EXPECT_EQ(parsed->intra[i].syndicate, report.intra[i].syndicate) << i;
    EXPECT_EQ(parsed->intra[i].chain, report.intra[i].chain) << i;
  }

  // Serialization is a pure function of the report.
  EXPECT_EQ(bytes, SerializeShardResult(42, report));
}

TEST(ShardResultTest, FlagsRoundTrip) {
  CanonicalReport report = SampleReport();
  report.summary.degraded = true;
  report.summary.truncated = true;
  report.summary.skipped_subs = 5;
  Result<CanonicalReport> parsed =
      ParseShardResult(SerializeShardResult(0, report), "mem", 0);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->summary.degraded);
  EXPECT_TRUE(parsed->summary.truncated);
  EXPECT_EQ(parsed->summary.skipped_subs, 5u);
}

TEST(ShardResultTest, ShardNumberMismatchRejected) {
  const std::string bytes = SerializeShardResult(3, SampleReport());
  Result<CanonicalReport> parsed = ParseShardResult(bytes, "mem", 4);
  ASSERT_FALSE(parsed.ok());
  EXPECT_TRUE(parsed.status().IsCorruption());
}

TEST(ShardResultTest, EveryTruncationRejected) {
  const std::string bytes = SerializeShardResult(1, SampleReport());
  for (size_t len = 0; len < bytes.size(); ++len) {
    Result<CanonicalReport> parsed =
        ParseShardResult(bytes.substr(0, len), "mem", 1);
    EXPECT_FALSE(parsed.ok()) << "accepted truncation at " << len;
  }
}

TEST(ShardResultTest, EveryBitFlipRejected) {
  const std::string bytes = SerializeShardResult(1, SampleReport());
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string mutated = bytes;
    mutated[i] ^= 0x01;
    Result<CanonicalReport> parsed = ParseShardResult(mutated, "mem", 1);
    EXPECT_FALSE(parsed.ok()) << "accepted bit flip at byte " << i;
  }
}

TEST(ShardResultTest, AppendedJunkRejected) {
  const std::string bytes = SerializeShardResult(1, SampleReport());
  EXPECT_FALSE(ParseShardResult(bytes + "trade 1\t1\ta\tb\n", "mem", 1)
                   .ok());
  EXPECT_FALSE(ParseShardResult(bytes + "\n", "mem", 1).ok());
}

TEST(ShardResultTest, EmptyReportRoundTrips) {
  CanonicalReport report;
  report.summary.total_trading_arcs = 12;
  Result<CanonicalReport> parsed =
      ParseShardResult(SerializeShardResult(0, report), "mem", 0);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->trades.empty());
  EXPECT_TRUE(parsed->intra.empty());
  EXPECT_EQ(parsed->summary.total_trading_arcs, 12u);
}

}  // namespace
}  // namespace tpiin

// Exit-code contract and the --failpoints flag: 0 clean, 1 error,
// 2 completed-but-degraded.

#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "cli/cli.h"
#include "common/failpoint.h"

namespace tpiin {
namespace {

class CliResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoints::Clear();
    dir_ = (std::filesystem::temp_directory_path() /
            ("tpiin_clires_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::create_directories(dir_);
    net_file_ = dir_ + "/net.edges";
  }
  void TearDown() override {
    Failpoints::Clear();
    std::filesystem::remove_all(dir_);
  }

  void BuildNet() {
    std::ostringstream out;
    ASSERT_TRUE(RunCli({"gen", "--out=" + dir_ + "/data",
                        "--companies=80", "--p=0.02", "--plant=6",
                        "--seed=11"},
                       out)
                    .ok());
    ASSERT_TRUE(RunCli({"fuse", "--data=" + dir_ + "/data",
                        "--out=" + net_file_},
                       out)
                    .ok());
  }

  std::string dir_;
  std::string net_file_;
};

TEST_F(CliResilienceTest, CleanDetectExitsZero) {
  BuildNet();
  std::ostringstream out;
  int exit_code = -1;
  ASSERT_TRUE(
      RunCli({"detect", "--net=" + net_file_}, out, &exit_code).ok());
  EXPECT_EQ(exit_code, 0);
}

TEST_F(CliResilienceTest, ErrorExitsOne) {
  std::ostringstream out;
  int exit_code = -1;
  EXPECT_FALSE(
      RunCli({"detect", "--net=/no/such/file"}, out, &exit_code).ok());
  EXPECT_EQ(exit_code, 1);
}

TEST_F(CliResilienceTest, BindingCapExitsTwoWithWarning) {
  BuildNet();
  std::ostringstream out;
  int exit_code = -1;
  // Every subTPIIN has at least two nodes, so a cap of 1 skips them all
  // deterministically — the run completes with partial (empty) results.
  Status status = RunCli(
      {"detect", "--net=" + net_file_, "--max-sub-nodes=1"}, out,
      &exit_code);
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(exit_code, 2);
  EXPECT_NE(out.str().find("WARNING"), std::string::npos);
  EXPECT_NE(out.str().find("partial"), std::string::npos);
}

TEST_F(CliResilienceTest, FailpointsFlagInjectsFaults) {
  BuildNet();
  std::ostringstream out;
  int exit_code = -1;
  Status status =
      RunCli({"detect", "--net=" + net_file_,
              "--failpoints=io.edge_list.read:ioerror"},
             out, &exit_code);
  EXPECT_TRUE(status.IsIOError()) << status.ToString();
  EXPECT_EQ(exit_code, 1);
}

TEST_F(CliResilienceTest, FailpointsFlagSpaceSeparatedForm) {
  BuildNet();
  std::ostringstream out;
  Status status = RunCli({"--failpoints", "io.edge_list.read:corruption",
                          "detect", "--net=" + net_file_},
                         out);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
}

TEST_F(CliResilienceTest, BadFailpointsSpecRejected) {
  std::ostringstream out;
  Status status =
      RunCli({"detect", "--net=x", "--failpoints=nonsense"}, out);
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_FALSE(Failpoints::AnyActive());
}

TEST_F(CliResilienceTest, UsageDocumentsExitCodesAndBudget) {
  const std::string usage = CliUsage();
  EXPECT_NE(usage.find("--failpoints"), std::string::npos);
  EXPECT_NE(usage.find("--max-sub-nodes"), std::string::npos);
  EXPECT_NE(usage.find("--deadline-ms"), std::string::npos);
  EXPECT_NE(usage.find("exit"), std::string::npos);
}

}  // namespace
}  // namespace tpiin

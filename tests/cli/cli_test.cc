#include "cli/cli.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.h"

namespace tpiin {
namespace {

std::string ReadFileToString(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("tpiin_cli_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Run(const std::vector<std::string>& args,
                  Status* status_out = nullptr) {
    std::ostringstream out;
    Status status = RunCli(args, out);
    if (status_out != nullptr) {
      *status_out = status;
    } else {
      EXPECT_TRUE(status.ok()) << status.ToString();
    }
    return out.str();
  }

  std::string dir_;
};

TEST_F(CliTest, HelpAndUnknownCommand) {
  EXPECT_NE(Run({}).find("Commands:"), std::string::npos);
  EXPECT_NE(Run({"help"}).find("detect"), std::string::npos);
  Status status;
  Run({"frobnicate"}, &status);
  EXPECT_TRUE(status.IsInvalidArgument());
}

TEST_F(CliTest, GenFuseDetectPipeline) {
  std::string data_dir = dir_ + "/data";
  std::string net_file = dir_ + "/net.edges";

  std::string gen_output = Run({"gen", "--out=" + data_dir,
                                "--companies=120", "--p=0.02",
                                "--plant=10", "--seed=3"});
  EXPECT_NE(gen_output.find("dataset:"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(data_dir + "/persons.csv"));

  std::string fuse_output =
      Run({"fuse", "--data=" + data_dir, "--out=" + net_file});
  EXPECT_NE(fuse_output.find("Antecedent"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(net_file));

  std::string report_dir = dir_ + "/reports";
  std::string detect_output =
      Run({"detect", "--net=" + net_file, "--out=" + report_dir,
           "--threads=2", "--top=5"});
  EXPECT_NE(detect_output.find("suspicious trades"), std::string::npos);
  EXPECT_NE(detect_output.find("proof chains"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(report_dir + "/susGroup.txt"));
  EXPECT_TRUE(std::filesystem::exists(report_dir + "/susTrade.txt"));
  EXPECT_TRUE(std::filesystem::exists(report_dir + "/report.txt"));
}

TEST_F(CliTest, StatsAndExport) {
  std::string data_dir = dir_ + "/data";
  std::string net_file = dir_ + "/net.edges";
  Run({"gen", "--out=" + data_dir, "--companies=60", "--seed=9"});
  Run({"fuse", "--data=" + data_dir, "--out=" + net_file});

  std::string stats = Run({"stats", "--net=" + net_file});
  EXPECT_NE(stats.find("antecedent:"), std::string::npos);
  EXPECT_NE(stats.find("trading:"), std::string::npos);

  std::string dot_file = dir_ + "/net.dot";
  Run({"export", "--net=" + net_file, "--format=dot",
       "--out=" + dot_file});
  EXPECT_TRUE(std::filesystem::exists(dot_file));

  std::string gexf_file = dir_ + "/net.gexf";
  Run({"export", "--net=" + net_file, "--format=gexf",
       "--out=" + gexf_file});
  EXPECT_TRUE(std::filesystem::exists(gexf_file));

  std::string ego_file = dir_ + "/ego.dot";
  std::string ego_output =
      Run({"export", "--net=" + net_file, "--format=dot",
           "--out=" + ego_file, "--ego=C0000", "--depth=2"});
  EXPECT_NE(ego_output.find("ego network of C0000"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(ego_file));

  Status status;
  Run({"export", "--net=" + net_file, "--format=dot",
       "--out=" + dir_ + "/x.dot", "--ego=NoSuch"},
      &status);
  EXPECT_TRUE(status.IsNotFound());
}

TEST_F(CliTest, ExplainAndJsonReport) {
  std::string data_dir = dir_ + "/data";
  std::string net_file = dir_ + "/net.edges";
  Run({"gen", "--out=" + data_dir, "--companies=100", "--p=0.02",
       "--plant=8", "--seed=21"});
  Run({"fuse", "--data=" + data_dir, "--out=" + net_file});

  std::string json_file = dir_ + "/report.json";
  std::string detect_output = Run(
      {"detect", "--net=" + net_file, "--json=" + json_file, "--top=3"});
  EXPECT_NE(detect_output.find("JSON report written"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(json_file));

  std::string explain_output =
      Run({"explain", "--net=" + net_file, "--company=C0000"});
  EXPECT_NE(explain_output.find("Preliminary analysis: C0000"),
            std::string::npos);

  Status status;
  Run({"explain", "--net=" + net_file, "--company=NoSuch"}, &status);
  EXPECT_TRUE(status.IsNotFound());
  Run({"explain", "--net=" + net_file, "--company=L0000"}, &status);
  // Person node (InvalidArgument), or NotFound when L0000 was merged
  // into a kinship syndicate and carries a brace label.
  EXPECT_TRUE(status.IsInvalidArgument() || status.IsNotFound());
}

TEST_F(CliTest, ScreenSingleAndPairsFile) {
  std::string data_dir = dir_ + "/data";
  std::string net_file = dir_ + "/net.edges";
  Run({"gen", "--out=" + data_dir, "--companies=80", "--seed=13"});
  Run({"fuse", "--data=" + data_dir, "--out=" + net_file});

  std::string single = Run({"screen", "--net=" + net_file,
                            "--seller=C0000", "--buyer=C0001"});
  EXPECT_TRUE(single.find("SUSPICIOUS") != std::string::npos ||
              single.find("clear") != std::string::npos);
  EXPECT_NE(single.find("relationship(s) suspicious"), std::string::npos);

  std::string pairs_file = dir_ + "/pairs.csv";
  {
    std::ofstream out(pairs_file);
    out << "C0000,C0001\nC0002,C0003\n";
  }
  std::string batch = Run({"screen", "--net=" + net_file,
                           "--pairs=" + pairs_file});
  EXPECT_NE(batch.find("of 2 relationship(s)"), std::string::npos);

  Status status;
  Run({"screen", "--net=" + net_file}, &status);
  EXPECT_TRUE(status.IsInvalidArgument());
  Run({"screen", "--net=" + net_file, "--seller=C0000", "--buyer=Nope"},
      &status);
  EXPECT_TRUE(status.IsNotFound());
}

TEST_F(CliTest, MissingRequiredFlagsAreErrors) {
  Status status;
  Run({"gen"}, &status);
  EXPECT_TRUE(status.IsInvalidArgument());
  Run({"fuse", "--data=x"}, &status);
  EXPECT_TRUE(status.IsInvalidArgument());
  Run({"detect"}, &status);
  EXPECT_TRUE(status.IsInvalidArgument());
  Run({"stats"}, &status);
  EXPECT_TRUE(status.IsInvalidArgument());
  Run({"export", "--net=x"}, &status);
  EXPECT_TRUE(status.IsInvalidArgument());
}

TEST_F(CliTest, BadFormatRejected) {
  std::string data_dir = dir_ + "/data";
  std::string net_file = dir_ + "/net.edges";
  Run({"gen", "--out=" + data_dir, "--companies=40", "--seed=2"});
  Run({"fuse", "--data=" + data_dir, "--out=" + net_file});
  Status status;
  Run({"export", "--net=" + net_file, "--format=png",
       "--out=" + dir_ + "/x"},
      &status);
  EXPECT_TRUE(status.IsInvalidArgument());
}

TEST_F(CliTest, DetectOnMissingFileFails) {
  Status status;
  Run({"detect", "--net=/no/such/file"}, &status);
  EXPECT_TRUE(status.IsIOError());
}

TEST_F(CliTest, RunReportAndTraceOutputs) {
  std::string data_dir = dir_ + "/data";
  std::string net_file = dir_ + "/net.edges";
  Run({"gen", "--out=" + data_dir, "--companies=100", "--p=0.02",
       "--plant=8", "--seed=21"});

  std::string fuse_report = dir_ + "/fuse_report.json";
  std::string fuse_trace = dir_ + "/fuse_trace.json";
  std::string fuse_output =
      Run({"fuse", "--data=" + data_dir, "--out=" + net_file,
           "--report=" + fuse_report, "--trace-out=" + fuse_trace});
  EXPECT_NE(fuse_output.find("run report written"), std::string::npos);
  EXPECT_NE(fuse_output.find("trace written"), std::string::npos);

  std::string report_json = ReadFileToString(fuse_report);
  EXPECT_NE(report_json.find("\"tool\": \"fuse\""), std::string::npos);
  EXPECT_NE(report_json.find("\"fusion\""), std::string::npos);
  std::string trace_json = ReadFileToString(fuse_trace);
  EXPECT_NE(trace_json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_json.find("\"fuse\""), std::string::npos);

  std::string detect_report = dir_ + "/detect_report.json";
  std::string detect_trace = dir_ + "/detect_trace.json";
  Run({"detect", "--net=" + net_file, "--report=" + detect_report,
       "--trace-out=" + detect_trace, "--top=3"});
  report_json = ReadFileToString(detect_report);
  EXPECT_NE(report_json.find("\"tool\": \"detect\""), std::string::npos);
  EXPECT_NE(report_json.find("\"slowest_subtpiins\""), std::string::npos);
  EXPECT_NE(report_json.find("\"metrics\""), std::string::npos);
  trace_json = ReadFileToString(detect_trace);
  EXPECT_NE(trace_json.find("\"segment\""), std::string::npos);

  // Unwritable report path surfaces as an IO error, not silence.
  Status status;
  Run({"detect", "--net=" + net_file, "--report=/no/such/dir/r.json"},
      &status);
  EXPECT_TRUE(status.IsIOError());
}

TEST_F(CliTest, LogLevelFlagIsConsumedAnywhere) {
  std::string data_dir = dir_ + "/data";
  Run({"gen", "--out=" + data_dir, "--companies=40", "--seed=2",
       "--log-level=warning"});
  EXPECT_TRUE(std::filesystem::exists(data_dir + "/persons.csv"));

  // Space-separated form, before the command.
  std::string net_file = dir_ + "/net.edges";
  Run({"--log-level", "error", "fuse", "--data=" + data_dir,
       "--out=" + net_file});
  EXPECT_TRUE(std::filesystem::exists(net_file));
  SetLogLevel(LogLevel::kInfo);

  Status status;
  Run({"stats", "--net=" + net_file, "--log-level=loud"}, &status);
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_NE(status.message().find("log-level"), std::string::npos);
  Run({"stats", "--net=" + net_file, "--log-level"}, &status);
  EXPECT_TRUE(status.IsInvalidArgument());
}

}  // namespace
}  // namespace tpiin

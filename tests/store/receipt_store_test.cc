#include "store/receipt_store.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "datagen/receipts.h"
#include "ite/audit.h"

namespace tpiin {
namespace {

Receipt MakeReceipt(TransactionId id, CompanyId seller, CompanyId buyer,
                    CategoryId category, double price) {
  Receipt receipt;
  receipt.id = id;
  receipt.seller = seller;
  receipt.buyer = buyer;
  receipt.category = category;
  receipt.day = static_cast<uint32_t>(id % 365);
  receipt.quantity = 10;
  receipt.unit_price = price;
  return receipt;
}

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(ReceiptStoreTest, AppendAndRowRoundTrip) {
  ReceiptStore store;
  EXPECT_EQ(store.NumRows(), 0u);
  store.Append(MakeReceipt(1, 0, 1, 2, 50.0));
  std::vector<Receipt> batch = {MakeReceipt(2, 1, 2, 0, 30.0),
                                MakeReceipt(3, 0, 1, 2, 55.0)};
  store.AppendBatch(batch);
  ASSERT_EQ(store.NumRows(), 3u);
  Receipt row = store.Row(2);
  EXPECT_EQ(row.id, 3u);
  EXPECT_EQ(row.seller, 0u);
  EXPECT_DOUBLE_EQ(row.unit_price, 55.0);
  EXPECT_DOUBLE_EQ(row.Value(), 550.0);
}

TEST(ReceiptStoreTest, RelationshipIndexFindsAllRows) {
  ReceiptStore store;
  store.Append(MakeReceipt(1, 0, 1, 0, 10));
  store.Append(MakeReceipt(2, 1, 0, 0, 10));
  store.Append(MakeReceipt(3, 0, 1, 1, 20));
  std::span<const uint32_t> rows = store.RowsForRelationship(0, 1);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], 0u);
  EXPECT_EQ(rows[1], 2u);
  EXPECT_EQ(store.RowsForRelationship(1, 0).size(), 1u);
  EXPECT_TRUE(store.RowsForRelationship(5, 6).empty());
  // Index refreshes after further appends.
  store.Append(MakeReceipt(4, 0, 1, 0, 11));
  EXPECT_EQ(store.RowsForRelationship(0, 1).size(), 3u);
}

TEST(ReceiptStoreTest, DistinctRelationshipsInFirstAppearanceOrder) {
  ReceiptStore store;
  store.Append(MakeReceipt(1, 2, 3, 0, 10));
  store.Append(MakeReceipt(2, 0, 1, 0, 10));
  store.Append(MakeReceipt(3, 2, 3, 0, 10));
  std::vector<TradeRecord> relationships = store.DistinctRelationships();
  ASSERT_EQ(relationships.size(), 2u);
  EXPECT_EQ(relationships[0].seller, 2u);
  EXPECT_EQ(relationships[1].seller, 0u);
  EXPECT_EQ(store.NumRelationships(), 2u);
}

TEST(ReceiptStoreTest, SaveLoadRoundTrip) {
  ReceiptStore store;
  for (TransactionId id = 1; id <= 100; ++id) {
    store.Append(MakeReceipt(id, id % 7, (id + 1) % 7, id % 5,
                             10.0 + id * 0.5));
  }
  std::string path = TempPath("tpiin_store_roundtrip.bin");
  ASSERT_TRUE(store.Save(path).ok());
  auto restored = ReceiptStore::Load(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->NumRows(), store.NumRows());
  for (size_t i = 0; i < store.NumRows(); ++i) {
    Receipt a = store.Row(i);
    Receipt b = restored->Row(i);
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.seller, b.seller);
    EXPECT_EQ(a.buyer, b.buyer);
    EXPECT_EQ(a.category, b.category);
    EXPECT_EQ(a.day, b.day);
    EXPECT_DOUBLE_EQ(a.quantity, b.quantity);
    EXPECT_DOUBLE_EQ(a.unit_price, b.unit_price);
  }
  EXPECT_EQ(restored->NumRelationships(), store.NumRelationships());
  std::filesystem::remove(path);
}

TEST(ReceiptStoreTest, EmptyStoreRoundTrips) {
  ReceiptStore store;
  std::string path = TempPath("tpiin_store_empty.bin");
  ASSERT_TRUE(store.Save(path).ok());
  auto restored = ReceiptStore::Load(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->NumRows(), 0u);
  std::filesystem::remove(path);
}

TEST(ReceiptStoreTest, LoadRejectsGarbage) {
  std::string path = TempPath("tpiin_store_garbage.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "definitely not a receipt store";
  }
  EXPECT_TRUE(ReceiptStore::Load(path).status().IsCorruption());
  std::filesystem::remove(path);
  EXPECT_TRUE(ReceiptStore::Load("/no/such/file").status().IsIOError());
}

TEST(ReceiptStoreTest, LoadRejectsTruncation) {
  ReceiptStore store;
  for (TransactionId id = 1; id <= 50; ++id) {
    store.Append(MakeReceipt(id, 0, 1, 0, 10));
  }
  std::string path = TempPath("tpiin_store_trunc.bin");
  ASSERT_TRUE(store.Save(path).ok());
  auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_TRUE(ReceiptStore::Load(path).status().IsCorruption());
  std::filesystem::remove(path);
}

TEST(MarketEstimationTest, MedianRecoversTrueMarket) {
  std::vector<TradeRecord> trades;
  for (CompanyId i = 0; i < 40; ++i) trades.push_back({i, i + 40});
  ReceiptGenConfig config;
  config.seed = 5;
  config.min_receipts = 4;
  config.max_receipts = 8;
  GeneratedReceipts generated = GenerateReceipts(trades, {}, config);
  ReceiptStore store;
  store.AppendBatch(generated.receipts);
  MarketTable estimated =
      EstimateMarketTable(store, config.num_categories);
  for (CategoryId c = 0; c < config.num_categories; ++c) {
    double truth = generated.true_market.PriceOf(c);
    EXPECT_NEAR(estimated.PriceOf(c), truth,
                truth * config.honest_price_noise * 1.01)
        << "category " << c;
  }
}

TEST(MarketEstimationTest, MedianIsRobustToMispricedMinority) {
  std::vector<TradeRecord> trades;
  std::vector<std::pair<CompanyId, CompanyId>> iat_pairs;
  for (CompanyId i = 0; i < 50; ++i) {
    trades.push_back({i, i + 50});
    if (i < 8) iat_pairs.emplace_back(i, i + 50);  // 16% mispriced.
  }
  ReceiptGenConfig config;
  config.seed = 7;
  GeneratedReceipts generated = GenerateReceipts(trades, iat_pairs, config);
  ReceiptStore store;
  store.AppendBatch(generated.receipts);
  MarketTable estimated =
      EstimateMarketTable(store, config.num_categories);
  for (CategoryId c = 0; c < config.num_categories; ++c) {
    double truth = generated.true_market.PriceOf(c);
    if (truth == 0) continue;
    EXPECT_NEAR(estimated.PriceOf(c), truth, truth * 0.06)
        << "category " << c;
  }
}

TEST(StoreToLedgerTest, AuditWithEstimatedMarketRecoversPlantedRows) {
  std::vector<TradeRecord> trades;
  std::vector<std::pair<CompanyId, CompanyId>> iat_pairs = {{0, 1},
                                                            {2, 3}};
  for (CompanyId i = 0; i < 30; ++i) trades.push_back({i, (i + 1) % 30});
  ReceiptGenConfig config;
  config.seed = 13;
  config.min_receipts = 3;
  config.max_receipts = 6;
  GeneratedReceipts generated = GenerateReceipts(trades, iat_pairs, config);
  ReceiptStore store;
  store.AppendBatch(generated.receipts);

  // Production flow: estimate comparables from the store itself, then
  // audit only the suspicious relationships.
  MarketTable estimated =
      EstimateMarketTable(store, config.num_categories);
  Ledger ledger = StoreToLedger(store, estimated, generated.mispriced);
  AuditReport report = RunAudit(ledger, iat_pairs);
  EXPECT_DOUBLE_EQ(report.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(report.Precision(), 1.0);
  EXPECT_LT(report.ExaminedFraction(), 0.5);
}

TEST(GenerateReceiptsTest, DeterministicAndWithinRanges) {
  std::vector<TradeRecord> trades = {{0, 1}, {1, 2}};
  GeneratedReceipts a = GenerateReceipts(trades, {});
  GeneratedReceipts b = GenerateReceipts(trades, {});
  ASSERT_EQ(a.receipts.size(), b.receipts.size());
  for (size_t i = 0; i < a.receipts.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.receipts[i].unit_price, b.receipts[i].unit_price);
    EXPECT_EQ(a.receipts[i].day, b.receipts[i].day);
  }
  ReceiptGenConfig config;
  for (const Receipt& receipt : a.receipts) {
    EXPECT_LT(receipt.day, config.num_days);
    EXPECT_LT(receipt.category, config.num_categories);
    EXPECT_GE(receipt.quantity, config.min_quantity);
    EXPECT_LE(receipt.quantity, config.max_quantity);
  }
}

}  // namespace
}  // namespace tpiin

#include "ite/audit.h"

#include <gtest/gtest.h>

namespace tpiin {
namespace {

std::vector<TradeRecord> SomeTrades() {
  return {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}};
}

TEST(AuditTest, ScreenedAuditExaminesOnlySuspiciousRelations) {
  Ledger ledger = GenerateLedger(SomeTrades(), {{0, 1}});
  AuditReport report = RunAudit(ledger, {{0, 1}});
  EXPECT_LT(report.transactions_examined, report.transactions_total);
  EXPECT_GT(report.transactions_examined, 0u);
  EXPECT_LT(report.ExaminedFraction(), 1.0);
}

TEST(AuditTest, FullScanExaminesEverything) {
  Ledger ledger = GenerateLedger(SomeTrades(), {{0, 1}});
  AuditOptions options;
  options.examine_all = true;
  AuditReport report = RunAudit(ledger, {}, options);
  EXPECT_EQ(report.transactions_examined, report.transactions_total);
  EXPECT_DOUBLE_EQ(report.ExaminedFraction(), 1.0);
}

TEST(AuditTest, PerfectRecallWhenScreeningCoversIats) {
  Ledger ledger = GenerateLedger(SomeTrades(), {{0, 1}, {2, 3}});
  AuditReport report = RunAudit(ledger, {{0, 1}, {2, 3}});
  EXPECT_DOUBLE_EQ(report.Recall(), 1.0);
  EXPECT_DOUBLE_EQ(report.Precision(), 1.0);
  EXPECT_EQ(report.false_negatives, 0u);
  EXPECT_GT(report.total_adjustment, 0.0);
}

TEST(AuditTest, MissedScreeningLosesRecall) {
  Ledger ledger = GenerateLedger(SomeTrades(), {{0, 1}, {2, 3}});
  // Screening covers only one of the two mispriced relations.
  AuditReport report = RunAudit(ledger, {{0, 1}});
  EXPECT_LT(report.Recall(), 1.0);
  EXPECT_GT(report.Recall(), 0.0);
  EXPECT_GT(report.false_negatives, 0u);
}

TEST(AuditTest, EmptyScreeningFindsNothing) {
  Ledger ledger = GenerateLedger(SomeTrades(), {{0, 1}});
  AuditReport report = RunAudit(ledger, {});
  EXPECT_EQ(report.transactions_examined, 0u);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_DOUBLE_EQ(report.Recall(), 0.0);
  // No flags -> vacuous precision of 1.
  EXPECT_DOUBLE_EQ(report.Precision(), 1.0);
}

TEST(AuditTest, FullScanAndScreenedAgreeOnCoveredIats) {
  Ledger ledger = GenerateLedger(SomeTrades(), {{1, 2}});
  AuditReport screened = RunAudit(ledger, {{1, 2}});
  AuditOptions full_options;
  full_options.examine_all = true;
  AuditReport full = RunAudit(ledger, {}, full_options);
  EXPECT_EQ(screened.findings.size(), full.findings.size());
  EXPECT_DOUBLE_EQ(screened.total_adjustment, full.total_adjustment);
  EXPECT_DOUBLE_EQ(screened.Recall(), full.Recall());
}

TEST(AuditTest, SummaryIsInformative) {
  Ledger ledger = GenerateLedger(SomeTrades(), {{0, 1}});
  AuditReport report = RunAudit(ledger, {{0, 1}});
  std::string summary = report.Summary();
  EXPECT_NE(summary.find("examined"), std::string::npos);
  EXPECT_NE(summary.find("recall"), std::string::npos);
}

TEST(AuditTest, EmptyLedgerIsHandled) {
  Ledger ledger;
  AuditReport report = RunAudit(ledger, {{0, 1}});
  EXPECT_EQ(report.transactions_total, 0u);
  EXPECT_DOUBLE_EQ(report.ExaminedFraction(), 0.0);
}

}  // namespace
}  // namespace tpiin

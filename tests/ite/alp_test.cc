#include "ite/alp.h"

#include <gtest/gtest.h>

#include "datagen/case_studies.h"

namespace tpiin {
namespace {

TEST(TnmmTest, Case1ReproducesPaperAdjustment) {
  // Case 1: C3 declared zero/negative profit on 638M revenue; comparable
  // producers earn a 4% net margin -> 25.52M RMB adjustment.
  CaseStudy cs = BuildCaseStudy1();
  double adjustment =
      TnmmAdjustment(cs.revenue, /*declared_profit=*/0.0, cs.normal_margin);
  EXPECT_NEAR(adjustment, cs.expected_adjustment, 1.0);
}

TEST(TnmmTest, NoAdjustmentWhenProfitMeetsMargin) {
  EXPECT_DOUBLE_EQ(TnmmAdjustment(100.0, 10.0, 0.05), 0.0);
  EXPECT_DOUBLE_EQ(TnmmAdjustment(100.0, 5.0, 0.05), 0.0);
}

TEST(TnmmTest, LossMakesAdjustmentExceedMarginGap) {
  // Declared loss of 10 on 100 revenue at 5% margin: adjust 15.
  EXPECT_DOUBLE_EQ(TnmmAdjustment(100.0, -10.0, 0.05), 15.0);
}

TEST(CostPlusTest, Case3ApproximatesPaperAdjustment) {
  // Case 3: cost 80M + expense 20M at 9% normal margin vs 90M declared
  // revenue -> (100M * 1.09) - 90M = 19M, the paper reports 19.89M (its
  // comparables differ slightly; the shape — a ~20M upward adjustment —
  // holds).
  CaseStudy cs = BuildCaseStudy3();
  double adjustment =
      CostPlusAdjustment(cs.cost, cs.expense, cs.revenue, cs.normal_margin);
  EXPECT_NEAR(adjustment, cs.expected_adjustment,
              0.05 * cs.expected_adjustment);
}

TEST(CostPlusTest, NoAdjustmentWhenRevenueSufficient) {
  EXPECT_DOUBLE_EQ(CostPlusAdjustment(80.0, 20.0, 120.0, 0.09), 0.0);
}

TEST(CupTest, Case2ReproducesPaperAdjustment) {
  // Case 2: 5000 meters at $20 vs the $30 domestic price; at the 10%
  // rate the TAO adjusted $5000.
  CaseStudy cs = BuildCaseStudy2();
  Ledger ledger;
  ledger.market.unit_price = {cs.market_price};
  Transaction tx;
  tx.id = 1;
  tx.seller = cs.expected_seller;
  tx.buyer = cs.expected_buyer;
  tx.category = 0;
  tx.quantity = cs.quantity;
  tx.unit_price = cs.transfer_price;
  ledger.transactions.push_back(tx);

  std::vector<CupFinding> findings = CupScan(ledger, {0});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NEAR(findings[0].underpricing,
              (cs.market_price - cs.transfer_price) * cs.quantity, 1e-6);
  EXPECT_NEAR(findings[0].tax_adjustment, cs.expected_adjustment, 1e-6);
}

TEST(CupTest, WithinThresholdNotFlagged) {
  Ledger ledger;
  ledger.market.unit_price = {100.0};
  Transaction tx;
  tx.category = 0;
  tx.quantity = 10;
  tx.unit_price = 90.0;  // 10% below, threshold 15%.
  ledger.transactions.push_back(tx);
  EXPECT_TRUE(CupScan(ledger, {0}).empty());
}

TEST(CupTest, OverpricingNotFlagged) {
  // The detector targets under-invoicing (profit shifted to the buyer).
  Ledger ledger;
  ledger.market.unit_price = {100.0};
  Transaction tx;
  tx.category = 0;
  tx.quantity = 10;
  tx.unit_price = 160.0;
  ledger.transactions.push_back(tx);
  EXPECT_TRUE(CupScan(ledger, {0}).empty());
}

TEST(CupTest, CustomThresholdAndRate) {
  Ledger ledger;
  ledger.market.unit_price = {100.0};
  Transaction tx;
  tx.category = 0;
  tx.quantity = 100;
  tx.unit_price = 90.0;
  ledger.transactions.push_back(tx);
  CupOptions options;
  options.deviation_threshold = 0.05;
  options.tax_rate = 0.25;
  std::vector<CupFinding> findings = CupScan(ledger, {0}, options);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NEAR(findings[0].underpricing, 1000.0, 1e-9);
  EXPECT_NEAR(findings[0].tax_adjustment, 250.0, 1e-9);
}

}  // namespace
}  // namespace tpiin

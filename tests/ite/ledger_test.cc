#include "ite/ledger.h"

#include <set>

#include <gtest/gtest.h>

namespace tpiin {
namespace {

std::vector<TradeRecord> SomeTrades() {
  return {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
}

TEST(LedgerTest, EveryRelationGetsTransactionsInRange) {
  LedgerConfig config;
  config.min_transactions = 2;
  config.max_transactions = 5;
  Ledger ledger = GenerateLedger(SomeTrades(), {}, config);
  EXPECT_EQ(ledger.num_relations, 4u);
  EXPECT_GE(ledger.transactions.size(), 8u);
  EXPECT_LE(ledger.transactions.size(), 20u);
  std::set<std::pair<CompanyId, CompanyId>> covered;
  for (const Transaction& tx : ledger.transactions) {
    covered.emplace(tx.seller, tx.buyer);
    EXPECT_GT(tx.quantity, 0.0);
    EXPECT_GT(tx.unit_price, 0.0);
    EXPECT_LT(tx.category, config.num_categories);
    EXPECT_GT(tx.id, 0u);
  }
  EXPECT_EQ(covered.size(), 4u);
}

TEST(LedgerTest, DeterministicInSeed) {
  Ledger a = GenerateLedger(SomeTrades(), {{0, 1}});
  Ledger b = GenerateLedger(SomeTrades(), {{0, 1}});
  ASSERT_EQ(a.transactions.size(), b.transactions.size());
  for (size_t i = 0; i < a.transactions.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.transactions[i].unit_price,
                     b.transactions[i].unit_price);
  }
}

TEST(LedgerTest, IatTransactionsAreDiscounted) {
  LedgerConfig config;
  config.min_transactions = 3;
  config.max_transactions = 3;
  Ledger ledger = GenerateLedger(SomeTrades(), {{0, 1}}, config);
  ASSERT_FALSE(ledger.mispriced.empty());
  EXPECT_EQ(ledger.mispriced.size(), 3u);  // All of relation 0->1.
  for (size_t index : ledger.mispriced) {
    const Transaction& tx = ledger.transactions[index];
    EXPECT_EQ(tx.seller, 0u);
    EXPECT_EQ(tx.buyer, 1u);
    double market = ledger.market.PriceOf(tx.category);
    double discount = (market - tx.unit_price) / market;
    EXPECT_GE(discount, config.iat_discount_min - 1e-9);
    EXPECT_LE(discount, config.iat_discount_max + 1e-9);
  }
}

TEST(LedgerTest, HonestPricesNearMarket) {
  LedgerConfig config;
  config.honest_price_noise = 0.02;
  Ledger ledger = GenerateLedger(SomeTrades(), {}, config);
  for (const Transaction& tx : ledger.transactions) {
    double market = ledger.market.PriceOf(tx.category);
    EXPECT_NEAR(tx.unit_price, market, market * 0.021);
  }
}

TEST(LedgerTest, TransactionValueIsPriceTimesQuantity) {
  Transaction tx;
  tx.quantity = 7;
  tx.unit_price = 3.5;
  EXPECT_DOUBLE_EQ(tx.Value(), 24.5);
}

TEST(LedgerTest, MarketTableBasics) {
  MarketTable market;
  market.unit_price = {10.0, 20.0};
  EXPECT_EQ(market.num_categories(), 2u);
  EXPECT_DOUBLE_EQ(market.PriceOf(1), 20.0);
}

}  // namespace
}  // namespace tpiin

// Format-stability guard: data/worked_example.edges is a committed
// artifact of the v2 edge-list format. These tests pin (a) that the
// current writer still produces byte-identical output for the same
// network, and (b) that the committed file still loads and mines to the
// paper's results — so an accidental format change cannot slip through
// a release.

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "datagen/worked_example.h"
#include "io/edge_list.h"

#ifndef TPIIN_TEST_DATA_DIR
#define TPIIN_TEST_DATA_DIR "data"
#endif

namespace tpiin {
namespace {

std::string GoldenPath() {
  return std::string(TPIIN_TEST_DATA_DIR) + "/worked_example.edges";
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(GoldenFormatTest, WriterIsByteStable) {
  Tpiin net = BuildWorkedExampleTpiin();
  std::string fresh_path =
      ::testing::TempDir() + "/worked_example_fresh.edges";
  ASSERT_TRUE(WriteTpiinEdgeList(fresh_path, net).ok());
  std::string golden = ReadAll(GoldenPath());
  ASSERT_FALSE(golden.empty()) << "missing fixture " << GoldenPath();
  EXPECT_EQ(ReadAll(fresh_path), golden)
      << "edge-list serialization changed; if intentional, bump the "
         "format version and regenerate data/worked_example.edges";
}

TEST(GoldenFormatTest, CommittedFixtureStillMinesToPaperResults) {
  auto net = ReadTpiinEdgeList(GoldenPath());
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  auto result = DetectSuspiciousGroups(*net);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_simple, 3u);
  EXPECT_EQ(result->num_complex, 0u);
  EXPECT_EQ(result->suspicious_trades.size(), 3u);
}

}  // namespace
}  // namespace tpiin

#include "io/json_report.h"

#include <gtest/gtest.h>

#include "datagen/worked_example.h"

namespace tpiin {
namespace {

TEST(JsonEscapeTest, EscapesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(JsonEscape(std::string("ctl\x01") + "x"), "ctl\\u0001x");
}

class JsonReportTest : public ::testing::Test {
 protected:
  JsonReportTest() : net_(BuildWorkedExampleTpiin()) {
    auto result = DetectSuspiciousGroups(net_);
    EXPECT_TRUE(result.ok());
    detection_ = std::move(result).value();
    scoring_ = ScoreDetection(net_, detection_);
  }

  Tpiin net_;
  DetectionResult detection_;
  ScoringResult scoring_;
};

TEST_F(JsonReportTest, SummaryFieldsPresent) {
  std::string json = DetectionToJson(net_, detection_, &scoring_);
  EXPECT_NE(json.find("\"simple\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"complex\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"suspicious_trades\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"total_trades\": 5"), std::string::npos);
}

TEST_F(JsonReportTest, TradesAndGroupsListed) {
  std::string json = DetectionToJson(net_, detection_, &scoring_);
  EXPECT_NE(json.find("\"seller\": \"C3\", \"buyer\": \"C5\""),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"simple\""), std::string::npos);
  EXPECT_NE(json.find("\"antecedent\": \"B1\""), std::string::npos);
  // Scores from the scoring pass are attached.
  EXPECT_NE(json.find("\"score\": 1.000000"), std::string::npos);
}

TEST_F(JsonReportTest, WithoutScoringOmitsScores) {
  std::string json = DetectionToJson(net_, detection_, nullptr);
  EXPECT_EQ(json.find("\"score\""), std::string::npos);
  EXPECT_NE(json.find("\"groups\": ["), std::string::npos);
}

TEST_F(JsonReportTest, SyndicateLabelsEscapedSafely) {
  std::string json = DetectionToJson(net_, detection_, &scoring_);
  // The direct-built worked example uses the paper's syndicate labels
  // L1/B2; the fused variant's brace labels contain no JSON specials
  // either, checked via a hand-built net below.
  EXPECT_NE(json.find("\"L1\""), std::string::npos);
  TpiinBuilder builder;
  NodeId p = builder.AddPersonNode("{L6+LB}");
  NodeId c = builder.AddCompanyNode("C1");
  builder.AddInfluenceArc(p, c);
  auto net = builder.Build();
  ASSERT_TRUE(net.ok());
  auto detection = DetectSuspiciousGroups(*net);
  ASSERT_TRUE(detection.ok());
  std::string other = DetectionToJson(*net, *detection, nullptr);
  EXPECT_NE(other.find("\"summary\""), std::string::npos);
}

TEST_F(JsonReportTest, BalancedBracesSmokeCheck) {
  std::string json = DetectionToJson(net_, detection_, &scoring_);
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string && (c == '{' || c == '[')) {
      ++depth;
    } else if (!in_string && (c == '}' || c == ']')) {
      --depth;
      EXPECT_GE(depth, 0);
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

}  // namespace
}  // namespace tpiin

#include "io/dataset_csv.h"

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "datagen/province.h"
#include "datagen/worked_example.h"

namespace tpiin {
namespace {

class DatasetCsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("tpiin_csv_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string dir_;
};

TEST_F(DatasetCsvTest, WorkedExampleRoundTrip) {
  RawDataset original = BuildWorkedExampleDataset();
  ASSERT_TRUE(SaveDatasetCsv(dir_, original).ok());
  auto restored = LoadDatasetCsv(dir_);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  EXPECT_EQ(restored->persons().size(), original.persons().size());
  EXPECT_EQ(restored->companies().size(), original.companies().size());
  for (size_t i = 0; i < original.persons().size(); ++i) {
    EXPECT_EQ(restored->persons()[i].name, original.persons()[i].name);
    EXPECT_EQ(restored->persons()[i].roles, original.persons()[i].roles);
  }
  ASSERT_EQ(restored->influence().size(), original.influence().size());
  for (size_t i = 0; i < original.influence().size(); ++i) {
    EXPECT_EQ(restored->influence()[i].person,
              original.influence()[i].person);
    EXPECT_EQ(restored->influence()[i].kind, original.influence()[i].kind);
    EXPECT_EQ(restored->influence()[i].is_legal_person,
              original.influence()[i].is_legal_person);
  }
  ASSERT_EQ(restored->investments().size(), original.investments().size());
  EXPECT_DOUBLE_EQ(restored->investments()[0].share,
                   original.investments()[0].share);
  ASSERT_EQ(restored->trades().size(), original.trades().size());
  EXPECT_EQ(restored->trades()[2].seller, original.trades()[2].seller);
}

TEST_F(DatasetCsvTest, GeneratedProvinceRoundTrip) {
  auto province = GenerateProvince(SmallProvinceConfig(50, 77));
  ASSERT_TRUE(province.ok());
  ASSERT_TRUE(SaveDatasetCsv(dir_, province->dataset).ok());
  auto restored = LoadDatasetCsv(dir_);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->Stats().num_trades,
            province->dataset.Stats().num_trades);
  EXPECT_EQ(restored->Stats().num_influence,
            province->dataset.Stats().num_influence);
}

TEST_F(DatasetCsvTest, MissingDirectoryIsIOError) {
  EXPECT_TRUE(LoadDatasetCsv("/no/such/dir").status().IsIOError());
}

TEST_F(DatasetCsvTest, CorruptRolesRejected) {
  RawDataset original = BuildWorkedExampleDataset();
  ASSERT_TRUE(SaveDatasetCsv(dir_, original).ok());
  {
    std::ofstream out(dir_ + "/persons.csv");
    out << "id,name,roles\n0,X,250\n";  // Roles mask out of range.
  }
  EXPECT_TRUE(LoadDatasetCsv(dir_).status().IsCorruption());
}

TEST_F(DatasetCsvTest, OutOfRangeIdsRejected) {
  RawDataset original = BuildWorkedExampleDataset();
  ASSERT_TRUE(SaveDatasetCsv(dir_, original).ok());
  {
    std::ofstream out(dir_ + "/trades.csv");
    out << "seller,buyer\n0,999\n";
  }
  EXPECT_TRUE(LoadDatasetCsv(dir_).status().IsCorruption());
}

TEST_F(DatasetCsvTest, LoadedDatasetIsValidated) {
  RawDataset original = BuildWorkedExampleDataset();
  ASSERT_TRUE(SaveDatasetCsv(dir_, original).ok());
  {
    // Drop the influence table: companies lose their legal persons.
    std::ofstream out(dir_ + "/influence.csv");
    out << "person,company,kind,legal_person\n";
  }
  EXPECT_TRUE(LoadDatasetCsv(dir_).status().IsFailedPrecondition());
}

}  // namespace
}  // namespace tpiin

// Malformed-input corpus for the hardened loaders: every error class,
// across strict / skip / quarantine modes, with LoadReport accounting.

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "datagen/worked_example.h"
#include "io/dataset_csv.h"
#include "io/edge_list.h"
#include "io/ingest.h"
#include "io/ledger_csv.h"

namespace tpiin {
namespace {

namespace fs = std::filesystem;

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void Append(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::app);
  out << text;
}

class RobustIngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("tpiin_ingest_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  // A known-good on-disk dataset the tests then damage selectively.
  void WriteGoodDataset() {
    RawDataset dataset = BuildWorkedExampleDataset();
    ASSERT_TRUE(SaveDatasetCsv(dir_, dataset).ok());
    num_trades_ = dataset.trades().size();
    num_persons_ = dataset.persons().size();
  }

  std::string dir_;
  size_t num_trades_ = 0;
  size_t num_persons_ = 0;
};

TEST_F(RobustIngestTest, StrictModeFailsOnFirstBadRow) {
  WriteGoodDataset();
  Append(dir_ + "/trades.csv", "xx,yy\n");
  IngestOptions options;  // kStrict is the default.
  LoadReport report;
  auto loaded = LoadDatasetCsv(dir_, options, &report);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
  // Strict errors are annotated with the offending file and line.
  EXPECT_NE(loaded.status().ToString().find("trades.csv"),
            std::string::npos);
  EXPECT_EQ(report.rows_rejected, 1u);
}

TEST_F(RobustIngestTest, SkipModeDropsBadRowsAndCounts) {
  WriteGoodDataset();
  Append(dir_ + "/trades.csv", "xx,yy\n0\n");  // bad_number + columns
  IngestOptions options;
  options.mode = IngestMode::kSkip;
  LoadReport report;
  auto loaded = LoadDatasetCsv(dir_, options, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->trades().size(), num_trades_);
  EXPECT_EQ(report.rows_rejected, 2u);
  EXPECT_EQ(report.errors_by_class.at(ingest_error::kBadNumber), 1u);
  EXPECT_EQ(report.errors_by_class.at(ingest_error::kColumns), 1u);
  EXPECT_EQ(report.rows_loaded + report.rows_rejected, report.rows_seen);
  EXPECT_FALSE(report.Clean());
  EXPECT_NE(report.ToString().find("rejected"), std::string::npos);
}

TEST_F(RobustIngestTest, QuarantineModeWritesAnnotatedFile) {
  WriteGoodDataset();
  Append(dir_ + "/trades.csv", "xx,yy\n");
  IngestOptions options;
  options.mode = IngestMode::kQuarantine;
  options.quarantine_path = dir_ + "/quarantine.txt";
  LoadReport report;
  auto loaded = LoadDatasetCsv(dir_, options, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(report.rows_quarantined, 1u);
  const std::string quarantined = Slurp(options.quarantine_path);
  EXPECT_NE(quarantined.find("trades.csv"), std::string::npos);
  EXPECT_NE(quarantined.find(ingest_error::kBadNumber), std::string::npos);
  EXPECT_NE(quarantined.find("xx,yy"), std::string::npos)
      << "raw row preserved for repair and replay";
}

TEST_F(RobustIngestTest, QuarantineModeWithCleanInputWritesNothing) {
  WriteGoodDataset();
  IngestOptions options;
  options.mode = IngestMode::kQuarantine;
  options.quarantine_path = dir_ + "/quarantine.txt";
  LoadReport report;
  ASSERT_TRUE(LoadDatasetCsv(dir_, options, &report).ok());
  EXPECT_TRUE(report.Clean());
  EXPECT_FALSE(fs::exists(options.quarantine_path));
}

TEST_F(RobustIngestTest, DuplicatePersonIdClassified) {
  WriteGoodDataset();
  Append(dir_ + "/persons.csv", "0,Duplicate,0\n");
  IngestOptions options;
  options.mode = IngestMode::kSkip;
  LoadReport report;
  auto loaded = LoadDatasetCsv(dir_, options, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->persons().size(), num_persons_);
  EXPECT_EQ(report.errors_by_class.at(ingest_error::kDuplicateId), 1u);
}

TEST_F(RobustIngestTest, SkippedEntityMakesLaterReferencesDangle) {
  WriteGoodDataset();
  // Person 999's row is rejected (roles mask out of range), so the
  // interdependence row referencing it must dangle — never silently
  // re-wire to another person.
  Append(dir_ + "/persons.csv", "999,Ghost,999999\n");
  Append(dir_ + "/interdependence.csv", "999,0,kinship\n");
  IngestOptions options;
  options.mode = IngestMode::kSkip;
  LoadReport report;
  auto loaded = LoadDatasetCsv(dir_, options, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(report.errors_by_class.at(ingest_error::kBadEnum), 1u);
  EXPECT_EQ(report.errors_by_class.at(ingest_error::kDanglingRef), 1u);
}

TEST_F(RobustIngestTest, InvalidUtf8NameClassified) {
  WriteGoodDataset();
  Append(dir_ + "/persons.csv", "998,Bad\xC3\x28Name,0\n");
  IngestOptions options;
  options.mode = IngestMode::kSkip;
  LoadReport report;
  auto loaded = LoadDatasetCsv(dir_, options, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(report.errors_by_class.at(ingest_error::kBadUtf8), 1u);
}

TEST_F(RobustIngestTest, OversizedFieldClassified) {
  WriteGoodDataset();
  std::string row = "997,";
  row.append(200, 'a');
  row += ",0\n";
  Append(dir_ + "/persons.csv", row);
  IngestOptions options;
  options.mode = IngestMode::kSkip;
  options.max_field_bytes = 64;
  LoadReport report;
  auto loaded = LoadDatasetCsv(dir_, options, &report);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(report.errors_by_class.at(ingest_error::kOversizedField), 1u);
}

TEST_F(RobustIngestTest, MaxBadRowsTripsTheLoad) {
  WriteGoodDataset();
  Append(dir_ + "/trades.csv", "a,b\nc,d\ne,f\n");
  IngestOptions options;
  options.mode = IngestMode::kSkip;
  options.max_bad_rows = 2;
  auto loaded = LoadDatasetCsv(dir_, options, nullptr);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError());
}

TEST_F(RobustIngestTest, MissingHeaderIsAlwaysFatal) {
  WriteGoodDataset();
  {
    std::ofstream out(dir_ + "/trades.csv");
    out << "wrong,header\n0,1\n";
  }
  IngestOptions options;
  options.mode = IngestMode::kSkip;
  EXPECT_TRUE(LoadDatasetCsv(dir_, options, nullptr)
                  .status()
                  .IsCorruption())
      << "structural damage is fatal even in skip mode";
}

// ---------------------------------------------------------------------
// Edge-list loader.

constexpr char kGoodEdgeList[] =
    "tpiin-edge-list v2\n"
    "nodes 3\n"
    "0 P boss\n"
    "1 C alpha\n"
    "2 C beta\n"
    "arcs 3 2\n"
    "0 1 1 0.9\n"
    "1 2 0 1\n"
    "2 1 0 1\n";

TEST_F(RobustIngestTest, EdgeListSkipModeDropsBadArcRow) {
  const std::string path = dir_ + "/net.txt";
  {
    std::ofstream out(path);
    out << "tpiin-edge-list v2\n"
           "nodes 3\n"
           "0 P boss\n"
           "1 C alpha\n"
           "2 C beta\n"
           "arcs 3 2\n"
           "0 1 1 0.9\n"
           "1 2 0 xx\n"  // bad weight
           "2 1 0 1\n";
  }
  EXPECT_FALSE(ReadTpiinEdgeList(path).ok()) << "strict default";

  IngestOptions options;
  options.mode = IngestMode::kSkip;
  LoadReport report;
  auto net = ReadTpiinEdgeList(path, options, &report);
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  EXPECT_EQ(net->NumNodes(), 3u);
  EXPECT_EQ(report.rows_rejected, 1u);
  EXPECT_EQ(report.errors_by_class.at(ingest_error::kBadNumber), 1u);
}

TEST_F(RobustIngestTest, EdgeListArcErrorClasses) {
  const std::string path = dir_ + "/net.txt";
  {
    std::ofstream out(path);
    out << "tpiin-edge-list v2\n"
           "nodes 3\n"
           "0 P boss\n"
           "1 C alpha\n"
           "2 C beta\n"
           "arcs 4 2\n"
           "0 1 1 0.9\n"
           "1 9 0 1\n"    // endpoint out of range
           "1 2 1 0.5\n"  // influence color in the trading region
           "1 2\n";       // truncated row
  }
  IngestOptions options;
  options.mode = IngestMode::kSkip;
  LoadReport report;
  auto net = ReadTpiinEdgeList(path, options, &report);
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  EXPECT_EQ(report.rows_rejected, 3u);
  EXPECT_EQ(report.errors_by_class.at(ingest_error::kIdRange), 1u);
  EXPECT_EQ(report.errors_by_class.at(ingest_error::kBadEnum), 1u);
  EXPECT_EQ(report.errors_by_class.at(ingest_error::kColumns), 1u);
}

TEST_F(RobustIngestTest, EdgeListNodeDamageIsFatalEvenInSkipMode) {
  const std::string path = dir_ + "/net.txt";
  {
    std::ofstream out(path);
    std::string text(kGoodEdgeList);
    // Damage a node row: ids index the table, so this is structural.
    size_t pos = text.find("1 C alpha");
    ASSERT_NE(pos, std::string::npos);
    text[pos] = '9';
    out << text;
  }
  IngestOptions options;
  options.mode = IngestMode::kSkip;
  EXPECT_TRUE(ReadTpiinEdgeList(path, options, nullptr)
                  .status()
                  .IsCorruption());
}

// ---------------------------------------------------------------------
// Ledger loader.

void WriteLedgerFiles(const std::string& dir,
                      const std::string& extra_transaction_rows) {
  {
    std::ofstream out(dir + "/market.csv");
    out << "category,unit_price\n0,10\n1,20\n";
  }
  std::ofstream out(dir + "/transactions.csv");
  out << "id,seller,buyer,category,quantity,unit_price,mispriced\n"
         "0,0,1,0,5,9,1\n"
         "1,1,0,1,2,20,0\n"
      << extra_transaction_rows;
}

TEST_F(RobustIngestTest, LedgerSkipModeDropsBadTransactionRows) {
  WriteLedgerFiles(dir_, "2,0,1,zz,1,1,0\n3,0,1,7,1,1,0\n4,0,1,0,1,1,9\n");
  EXPECT_FALSE(LoadLedgerCsv(dir_).ok()) << "strict default";

  IngestOptions options;
  options.mode = IngestMode::kSkip;
  LoadReport report;
  auto ledger = LoadLedgerCsv(dir_, options, &report);
  ASSERT_TRUE(ledger.ok()) << ledger.status().ToString();
  EXPECT_EQ(ledger->transactions.size(), 2u);
  EXPECT_EQ(report.rows_rejected, 3u);
  EXPECT_EQ(report.errors_by_class.at(ingest_error::kBadNumber), 1u);
  EXPECT_EQ(report.errors_by_class.at(ingest_error::kDanglingRef), 1u)
      << "category 7 refers to no market row";
  EXPECT_EQ(report.errors_by_class.at(ingest_error::kBadEnum), 1u)
      << "mispriced flag must be 0 or 1";
}

TEST_F(RobustIngestTest, LoadReportToStringSummarizes) {
  LoadReport report;
  report.rows_seen = 12;
  report.rows_loaded = 10;
  report.rows_rejected = 2;
  report.errors_by_class["bad_number"] = 2;
  const std::string text = report.ToString();
  EXPECT_NE(text.find("10"), std::string::npos);
  EXPECT_NE(text.find("bad_number"), std::string::npos);
}

}  // namespace
}  // namespace tpiin

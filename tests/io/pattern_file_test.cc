#include "io/pattern_file.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/pattern_tree.h"
#include "datagen/worked_example.h"

namespace tpiin {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

class PatternFileTest : public ::testing::Test {
 protected:
  PatternFileTest() : net_(BuildWorkedExampleTpiin()) {
    subs_ = SegmentTpiin(net_);
    auto gen = GeneratePatternBase(subs_[0]);
    EXPECT_TRUE(gen.ok());
    base_ = std::move(gen)->base;
    auto result = DetectSuspiciousGroups(net_);
    EXPECT_TRUE(result.ok());
    detection_ = std::move(result).value();
  }

  Tpiin net_;
  std::vector<SubTpiin> subs_;
  PatternBase base_;
  DetectionResult detection_;
};

TEST_F(PatternFileTest, PatternBaseFileNumbersAllTrails) {
  std::string path = TempPath("tpiin_patterns_1.txt");
  ASSERT_TRUE(WritePatternBaseFile(path, subs_[0], base_).ok());
  std::string text = ReadAll(path);
  EXPECT_NE(text.find("1. "), std::string::npos);
  EXPECT_NE(text.find("15. "), std::string::npos);
  EXPECT_NE(text.find("-> C6"), std::string::npos);
  std::filesystem::remove(path);
}

TEST_F(PatternFileTest, SusGroupFileListsAllGroups) {
  std::string path = TempPath("tpiin_susgroup_1.txt");
  ASSERT_TRUE(
      WriteSuspiciousGroupsFile(path, net_, detection_.groups).ok());
  std::string text = ReadAll(path);
  EXPECT_NE(text.find("B1"), std::string::npos);
  EXPECT_NE(text.find("[simple]"), std::string::npos);
  std::filesystem::remove(path);
}

TEST_F(PatternFileTest, SusTradeFileListsArcs) {
  std::string path = TempPath("tpiin_sustrade_1.txt");
  ASSERT_TRUE(WriteSuspiciousTradesFile(path, net_,
                                        detection_.suspicious_trades)
                  .ok());
  std::string text = ReadAll(path);
  EXPECT_NE(text.find("C3 -> C5"), std::string::npos);
  EXPECT_NE(text.find("C5 -> C6"), std::string::npos);
  EXPECT_NE(text.find("C7 -> C8"), std::string::npos);
  EXPECT_EQ(text.find("C8 -> C4"), std::string::npos);
  std::filesystem::remove(path);
}

TEST_F(PatternFileTest, DetectionReportIsComprehensive) {
  std::string path = TempPath("tpiin_report.txt");
  ASSERT_TRUE(WriteDetectionReport(path, net_, detection_).ok());
  std::string text = ReadAll(path);
  EXPECT_NE(text.find("Suspicious trading relationships"),
            std::string::npos);
  EXPECT_NE(text.find("Suspicious groups"), std::string::npos);
  EXPECT_NE(text.find("simple=3"), std::string::npos);
  std::filesystem::remove(path);
}

TEST_F(PatternFileTest, UnwritablePathsFail) {
  EXPECT_TRUE(
      WritePatternBaseFile("/no/dir/p.txt", subs_[0], base_).IsIOError());
  EXPECT_TRUE(WriteSuspiciousGroupsFile("/no/dir/g.txt", net_, {})
                  .IsIOError());
  EXPECT_TRUE(WriteSuspiciousTradesFile("/no/dir/t.txt", net_, {})
                  .IsIOError());
  EXPECT_TRUE(
      WriteDetectionReport("/no/dir/r.txt", net_, detection_).IsIOError());
}

}  // namespace
}  // namespace tpiin

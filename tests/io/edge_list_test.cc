#include "io/edge_list.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "datagen/worked_example.h"

namespace tpiin {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(EdgeListTest, RoundTripPreservesStructure) {
  Tpiin original = BuildWorkedExampleTpiin();
  std::string path = TempPath("tpiin_edge_roundtrip.txt");
  ASSERT_TRUE(WriteTpiinEdgeList(path, original).ok());

  auto restored = ReadTpiinEdgeList(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->NumNodes(), original.NumNodes());
  EXPECT_EQ(restored->num_influence_arcs(), original.num_influence_arcs());
  EXPECT_EQ(restored->num_trading_arcs(), original.num_trading_arcs());
  for (NodeId v = 0; v < original.NumNodes(); ++v) {
    EXPECT_EQ(restored->Label(v), original.Label(v));
    EXPECT_EQ(restored->node(v).color, original.node(v).color);
  }
  EXPECT_EQ(restored->ToEdgeList(), original.ToEdgeList());
  std::remove(path.c_str());
}

TEST(EdgeListTest, RoundTrippedNetworkMinesIdentically) {
  Tpiin original = BuildWorkedExampleTpiin();
  std::string path = TempPath("tpiin_edge_mine.txt");
  ASSERT_TRUE(WriteTpiinEdgeList(path, original).ok());
  auto restored = ReadTpiinEdgeList(path);
  ASSERT_TRUE(restored.ok());

  auto a = DetectSuspiciousGroups(original);
  auto b = DetectSuspiciousGroups(*restored);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->num_simple, b->num_simple);
  EXPECT_EQ(a->num_complex, b->num_complex);
  EXPECT_EQ(a->suspicious_trades, b->suspicious_trades);
  std::remove(path.c_str());
}

TEST(EdgeListTest, LabelsWithSpacesSurvive) {
  TpiinBuilder builder;
  NodeId p = builder.AddPersonNode("{Zhang Wei+Li Na}");
  NodeId c = builder.AddCompanyNode("Acme Trading Co");
  builder.AddInfluenceArc(p, c);
  auto net = builder.Build();
  ASSERT_TRUE(net.ok());
  std::string path = TempPath("tpiin_edge_labels.txt");
  ASSERT_TRUE(WriteTpiinEdgeList(path, *net).ok());
  auto restored = ReadTpiinEdgeList(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->Label(0), "{Zhang Wei+Li Na}");
  EXPECT_EQ(restored->Label(1), "Acme Trading Co");
  std::remove(path.c_str());
}

TEST(EdgeListTest, WeightsSurviveRoundTrip) {
  TpiinBuilder builder;
  NodeId p = builder.AddPersonNode("P");
  NodeId c1 = builder.AddCompanyNode("C1");
  NodeId c2 = builder.AddCompanyNode("C2");
  builder.AddInfluenceArc(p, c1, 0.37);
  builder.AddInfluenceArc(c1, c2, 0.51);
  builder.AddTradingArc(c1, c2);
  auto net = builder.Build();
  ASSERT_TRUE(net.ok());
  std::string path = TempPath("tpiin_edge_weights.txt");
  ASSERT_TRUE(WriteTpiinEdgeList(path, *net).ok());
  auto restored = ReadTpiinEdgeList(path);
  ASSERT_TRUE(restored.ok());
  EXPECT_DOUBLE_EQ(restored->ArcWeight(0), 0.37);
  EXPECT_DOUBLE_EQ(restored->ArcWeight(1), 0.51);
  EXPECT_DOUBLE_EQ(restored->ArcWeight(2), 1.0);
  std::remove(path.c_str());
}

TEST(EdgeListTest, V1FilesLoadWithUnitWeights) {
  std::string path = TempPath("tpiin_edge_v1.txt");
  {
    std::ofstream out(path);
    out << "tpiin-edge-list v1\nnodes 2\n0 P A\n1 C B\n"
        << "arcs 1 2\n0 1 1\n";
  }
  auto restored = ReadTpiinEdgeList(path);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_DOUBLE_EQ(restored->ArcWeight(0), 1.0);
  std::remove(path.c_str());
}

TEST(EdgeListTest, OutOfRangeWeightIsCorruption) {
  std::string path = TempPath("tpiin_edge_badw.txt");
  {
    std::ofstream out(path);
    out << "tpiin-edge-list v2\nnodes 2\n0 P A\n1 C B\n"
        << "arcs 1 2\n0 1 1 1.5\n";
  }
  EXPECT_TRUE(ReadTpiinEdgeList(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(EdgeListTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadTpiinEdgeList("/no/such/file").status().IsIOError());
}

TEST(EdgeListTest, BadMagicIsCorruption) {
  std::string path = TempPath("tpiin_edge_magic.txt");
  {
    std::ofstream out(path);
    out << "not an edge list\n";
  }
  EXPECT_TRUE(ReadTpiinEdgeList(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(EdgeListTest, TruncatedFileIsCorruption) {
  std::string path = TempPath("tpiin_edge_trunc.txt");
  {
    std::ofstream out(path);
    out << "tpiin-edge-list v1\nnodes 2\n0 P A\n";  // Missing a node row.
  }
  EXPECT_TRUE(ReadTpiinEdgeList(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(EdgeListTest, ColorSplitMismatchIsCorruption) {
  std::string path = TempPath("tpiin_edge_split.txt");
  {
    std::ofstream out(path);
    out << "tpiin-edge-list v1\nnodes 2\n0 P A\n1 C B\n"
        << "arcs 1 2\n0 1 0\n";  // m says row 1 is influence, color says 0.
  }
  EXPECT_TRUE(ReadTpiinEdgeList(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(EdgeListTest, OutOfRangeEndpointIsCorruption) {
  std::string path = TempPath("tpiin_edge_range.txt");
  {
    std::ofstream out(path);
    out << "tpiin-edge-list v1\nnodes 2\n0 P A\n1 C B\n"
        << "arcs 1 1\n0 7 1\n";
  }
  EXPECT_TRUE(ReadTpiinEdgeList(path).status().IsCorruption());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tpiin

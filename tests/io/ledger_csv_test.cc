#include "io/ledger_csv.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace tpiin {
namespace {

class LedgerCsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("tpiin_ledger_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  Ledger MakeLedger() {
    return GenerateLedger({{0, 1}, {1, 2}, {2, 0}}, {{0, 1}});
  }

  std::string dir_;
};

TEST_F(LedgerCsvTest, RoundTripPreservesEverything) {
  Ledger original = MakeLedger();
  ASSERT_TRUE(SaveLedgerCsv(dir_, original).ok());
  auto restored = LoadLedgerCsv(dir_);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  ASSERT_EQ(restored->market.num_categories(),
            original.market.num_categories());
  for (CategoryId c = 0; c < original.market.num_categories(); ++c) {
    EXPECT_DOUBLE_EQ(restored->market.PriceOf(c),
                     original.market.PriceOf(c));
  }
  ASSERT_EQ(restored->transactions.size(), original.transactions.size());
  for (size_t i = 0; i < original.transactions.size(); ++i) {
    EXPECT_EQ(restored->transactions[i].id, original.transactions[i].id);
    EXPECT_EQ(restored->transactions[i].seller,
              original.transactions[i].seller);
    EXPECT_DOUBLE_EQ(restored->transactions[i].unit_price,
                     original.transactions[i].unit_price);
  }
  EXPECT_EQ(restored->mispriced, original.mispriced);
  EXPECT_EQ(restored->num_relations, 3u);
}

TEST_F(LedgerCsvTest, RestoredLedgerAuditsIdentically) {
  Ledger original = MakeLedger();
  ASSERT_TRUE(SaveLedgerCsv(dir_, original).ok());
  auto restored = LoadLedgerCsv(dir_);
  ASSERT_TRUE(restored.ok());
  AuditOptions options;
  options.examine_all = true;
  AuditReport a = RunAudit(original, {}, options);
  AuditReport b = RunAudit(*restored, {}, options);
  EXPECT_EQ(a.findings.size(), b.findings.size());
  EXPECT_DOUBLE_EQ(a.total_adjustment, b.total_adjustment);
  EXPECT_DOUBLE_EQ(a.Recall(), b.Recall());
}

TEST_F(LedgerCsvTest, CorruptCategoryRejected) {
  Ledger original = MakeLedger();
  ASSERT_TRUE(SaveLedgerCsv(dir_, original).ok());
  {
    std::ofstream out(dir_ + "/transactions.csv");
    out << "id,seller,buyer,category,quantity,unit_price,mispriced\n"
        << "1,0,1,999,10,5.0,0\n";
  }
  EXPECT_TRUE(LoadLedgerCsv(dir_).status().IsCorruption());
}

TEST_F(LedgerCsvTest, MissingDirectoryIsIOError) {
  EXPECT_TRUE(LoadLedgerCsv("/no/such/dir").status().IsIOError());
}

TEST_F(LedgerCsvTest, AuditReportFileListsFindings) {
  Ledger ledger = MakeLedger();
  AuditOptions options;
  options.examine_all = true;
  AuditReport report = RunAudit(ledger, {}, options);
  ASSERT_FALSE(report.findings.empty());
  std::string path = dir_ + "/audit.txt";
  ASSERT_TRUE(WriteAuditReport(path, ledger, report).ok());
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  EXPECT_NE(text.str().find("Findings:"), std::string::npos);
  EXPECT_NE(text.str().find("under-invoiced"), std::string::npos);
  EXPECT_NE(text.str().find("recall"), std::string::npos);
}

}  // namespace
}  // namespace tpiin

#include <filesystem>

#include <gtest/gtest.h>

#include "datagen/worked_example.h"
#include "fusion/layers.h"
#include "io/dot_export.h"
#include "io/gexf_export.h"

namespace tpiin {
namespace {

TEST(DotExportTest, TpiinDotHasNodesAndColoredArcs) {
  Tpiin net = BuildWorkedExampleTpiin();
  std::string dot = TpiinToDot(net, "worked_example");
  EXPECT_NE(dot.find("digraph \"worked_example\""), std::string::npos);
  // Person nodes are ellipses, company nodes are red boxes.
  EXPECT_NE(dot.find("shape=ellipse"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);
  // Influence arcs blue, trading arcs black.
  EXPECT_NE(dot.find("[color=blue]"), std::string::npos);
  EXPECT_NE(dot.find("[color=black]"), std::string::npos);
  // Every label present.
  for (NodeId v = 0; v < net.NumNodes(); ++v) {
    EXPECT_NE(dot.find(net.Label(v)), std::string::npos);
  }
}

TEST(DotExportTest, LayerDotRendersUndirectedInterdependence) {
  RawDataset data = BuildWorkedExampleDataset();
  Digraph g1 = BuildInterdependenceGraph(data);
  std::vector<std::string> labels;
  for (const Person& p : data.persons()) labels.push_back(p.name);
  std::string dot = LayerToDot(g1, labels, "G1");
  EXPECT_NE(dot.find("dir=none"), std::string::npos);
  EXPECT_NE(dot.find("brown"), std::string::npos);   // Kinship.
  EXPECT_NE(dot.find("gold"), std::string::npos);    // Interlocking.
}

TEST(DotExportTest, FrozenGraphOverloadMatchesDigraphByteForByte) {
  RawDataset data = BuildWorkedExampleDataset();
  Digraph g1 = BuildInterdependenceGraph(data);
  std::vector<std::string> labels;
  for (const Person& p : data.persons()) labels.push_back(p.name);

  std::string via_digraph = LayerToDot(g1, labels, "G1");
  // Freeze on the first arc color, as the Digraph overload does; G1
  // carries kinship + interlocking arcs in either role.
  ASSERT_FALSE(g1.arcs().empty());
  ArcColor first = g1.arcs().front().color;
  ArcColor other =
      first == kLayerKinship ? kLayerInterlocking : kLayerKinship;
  std::string via_frozen =
      LayerToDot(FrozenGraph(g1, first), other, labels, "G1");
  EXPECT_EQ(via_frozen, via_digraph);
}

TEST(DotExportTest, EscapesQuotesInLabels) {
  TpiinBuilder builder;
  NodeId p = builder.AddPersonNode("say \"hi\"");
  NodeId c = builder.AddCompanyNode("C");
  builder.AddInfluenceArc(p, c);
  auto net = builder.Build();
  ASSERT_TRUE(net.ok());
  std::string dot = TpiinToDot(*net, "g");
  EXPECT_NE(dot.find("say \\\"hi\\\""), std::string::npos);
}

TEST(DotExportTest, WriteStringToFile) {
  std::string path =
      (std::filesystem::temp_directory_path() / "tpiin_dot_test.dot")
          .string();
  ASSERT_TRUE(WriteStringToFile(path, "digraph {}\n").ok());
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_TRUE(
      WriteStringToFile("/no/such/dir/file.dot", "x").IsIOError());
  std::filesystem::remove(path);
}

TEST(GexfExportTest, ValidStructureWithAttributes) {
  Tpiin net = BuildWorkedExampleTpiin();
  std::string gexf = TpiinToGexf(net);
  EXPECT_NE(gexf.find("<?xml"), std::string::npos);
  EXPECT_NE(gexf.find("<gexf"), std::string::npos);
  EXPECT_NE(gexf.find("defaultedgetype=\"directed\""), std::string::npos);
  // 15 nodes and 19 edges.
  size_t node_count = 0;
  size_t pos = 0;
  while ((pos = gexf.find("<node ", pos)) != std::string::npos) {
    ++node_count;
    ++pos;
  }
  EXPECT_EQ(node_count, 15u);
  size_t edge_count = 0;
  pos = 0;
  while ((pos = gexf.find("<edge ", pos)) != std::string::npos) {
    ++edge_count;
    ++pos;
  }
  EXPECT_EQ(edge_count, 19u);
  EXPECT_NE(gexf.find("value=\"influence\""), std::string::npos);
  EXPECT_NE(gexf.find("value=\"trading\""), std::string::npos);
}

TEST(GexfExportTest, EscapesXmlSpecials) {
  TpiinBuilder builder;
  NodeId p = builder.AddPersonNode("A&B <corp>");
  NodeId c = builder.AddCompanyNode("C");
  builder.AddInfluenceArc(p, c);
  auto net = builder.Build();
  ASSERT_TRUE(net.ok());
  std::string gexf = TpiinToGexf(*net);
  EXPECT_NE(gexf.find("A&amp;B &lt;corp&gt;"), std::string::npos);
  EXPECT_EQ(gexf.find("A&B <corp>"), std::string::npos);
}

}  // namespace
}  // namespace tpiin

#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace tpiin {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 60);
}

TEST(RngTest, GoldenSequenceIsPlatformStable) {
  // Pins the xoshiro256** output for seed 42 so regenerated experiment
  // data stays byte-identical across platforms and releases.
  Rng rng(42);
  EXPECT_EQ(rng.Next(), 1546998764402558742ULL);
  EXPECT_EQ(rng.Next(), 6990951692964543102ULL);
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.UniformU64(bound), bound);
    }
  }
}

TEST(RngTest, UniformU64CoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 400; ++i) seen.insert(rng.UniformU64(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCasesAndMean) {
  Rng rng(13);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_FALSE(rng.Bernoulli(-0.5));
  EXPECT_TRUE(rng.Bernoulli(1.5));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng rng(17);
  double sum = 0;
  double sum_sq = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    double v = rng.Normal(5.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  double mean = sum / kN;
  double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, LogNormalIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.LogNormal(0.0, 1.0), 0.0);
  }
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(23);
  for (uint64_t n : {10ull, 100ull, 1000ull}) {
    for (uint64_t k : {uint64_t{0}, uint64_t{1}, n / 2, n}) {
      std::vector<uint64_t> sample = rng.SampleWithoutReplacement(n, k);
      EXPECT_EQ(sample.size(), k);
      std::set<uint64_t> unique(sample.begin(), sample.end());
      EXPECT_EQ(unique.size(), k);
      for (uint64_t v : sample) EXPECT_LT(v, n);
    }
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(29);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(31);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) ++counts[rng.WeightedIndex(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[0] / 8000.0, 0.25, 0.03);
  EXPECT_NEAR(counts[2] / 8000.0, 0.75, 0.03);
}

}  // namespace
}  // namespace tpiin

#include <atomic>
#include <functional>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "common/status.h"
#include "common/thread_pool.h"

namespace tpiin {
namespace {

TEST(PoolContainmentTest, ThrowingBodyRethrowsOnCaller) {
  ThreadPool pool(3);
  std::atomic<size_t> ran{0};
  EXPECT_THROW(
      pool.ParallelFor(64, 4,
                       [&](size_t i) {
                         if (i == 7) throw std::runtime_error("boom");
                         ran.fetch_add(1, std::memory_order_relaxed);
                       }),
      std::runtime_error);
  EXPECT_LT(ran.load(), 64u) << "indices after the failure are skipped";
}

TEST(PoolContainmentTest, PoolSurvivesAThrowingJob) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.ParallelFor(
                   8, 4, [](size_t) { throw std::runtime_error("boom"); }),
               std::runtime_error);
  // The workers must still be alive and able to run the next job.
  std::atomic<size_t> ran{0};
  pool.ParallelFor(100, 4, [&](size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 100u);
}

TEST(PoolContainmentTest, CheckedForReturnsInjectedStatus) {
  ThreadPool pool(3);
  Status status = pool.ParallelForChecked(32, 4, [](size_t i) {
    if (i == 5) return Status::Corruption("bad item 5");
    return Status::OK();
  });
  EXPECT_TRUE(status.IsCorruption());
  EXPECT_NE(status.ToString().find("bad item 5"), std::string::npos);
}

TEST(PoolContainmentTest, LowestIndexErrorWinsSerially) {
  // With one thread every body runs in index order, so the aggregation
  // contract (lowest failing index reported) is exactly observable.
  ThreadPool pool(0);
  Status status = pool.ParallelForChecked(16, 1, [](size_t i) {
    if (i >= 3) {
      return Status::Internal("fail " + std::to_string(i));
    }
    return Status::OK();
  });
  EXPECT_TRUE(status.IsInternal());
  EXPECT_NE(status.ToString().find("fail 3"), std::string::npos);
}

TEST(PoolContainmentTest, LowestIndexErrorAmongRanDeterministic) {
  // Concurrently, the set of bodies that run before cancellation varies,
  // but index 0 always runs (some thread claims it first), so when every
  // body fails the reported error is always index 0's.
  ThreadPool pool(7);
  for (int round = 0; round < 20; ++round) {
    Status status = pool.ParallelForChecked(64, 8, [](size_t i) {
      return Status::Internal("fail " + std::to_string(i));
    });
    ASSERT_TRUE(status.IsInternal());
    EXPECT_NE(status.ToString().find("fail 0"), std::string::npos);
  }
}

TEST(PoolContainmentTest, ErrorCancelsToken) {
  ThreadPool pool(3);
  CancelToken cancel;
  Status status = pool.ParallelForChecked(
      16, 4,
      [](size_t i) {
        if (i == 0) return Status::IOError("down");
        return Status::OK();
      },
      &cancel);
  EXPECT_TRUE(status.IsIOError());
  EXPECT_TRUE(cancel.cancelled());
}

TEST(PoolContainmentTest, PreCancelledTokenSkipsEverything) {
  ThreadPool pool(3);
  CancelToken cancel;
  cancel.Cancel();
  std::atomic<size_t> ran{0};
  Status status = pool.ParallelForChecked(
      32, 4,
      [&](size_t) {
        ran.fetch_add(1, std::memory_order_relaxed);
        return Status::OK();
      },
      &cancel);
  EXPECT_TRUE(status.IsCancelled());
  EXPECT_EQ(ran.load(), 0u);
}

TEST(PoolContainmentTest, CheckedExceptionBecomesInternalStatus) {
  ThreadPool pool(3);
  Status status = pool.ParallelForChecked(8, 4, [](size_t i) -> Status {
    if (i == 2) throw std::runtime_error("exploded");
    return Status::OK();
  });
  EXPECT_TRUE(status.IsInternal());
}

TEST(PoolContainmentTest, RunTasksCheckedReportsLowestFailure) {
  ThreadPool pool(3);
  std::vector<std::function<Status()>> tasks;
  tasks.push_back([] { return Status::OK(); });
  tasks.push_back([] { return Status::Corruption("stage b"); });
  tasks.push_back([] { return Status::IOError("stage c"); });
  Status status = pool.RunTasksChecked(tasks, 1);
  EXPECT_TRUE(status.IsCorruption()) << status.ToString();
}

TEST(PoolContainmentTest, CheckedForAllOkRunsEverything) {
  ThreadPool pool(3);
  std::atomic<size_t> ran{0};
  Status status = pool.ParallelForChecked(500, 4, [&](size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(ran.load(), 500u);
}

}  // namespace
}  // namespace tpiin

#include "common/atomic_file.h"

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "common/failpoint.h"

namespace tpiin {
namespace {

namespace fs = std::filesystem;

std::string Slurp(const std::string& path, std::ios::openmode mode = {}) {
  std::ifstream in(path, mode);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

size_t CountTempFiles(const fs::path& dir) {
  size_t n = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.path().filename().string().find(".tmp.") !=
        std::string::npos) {
      ++n;
    }
  }
  return n;
}

class AtomicFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Failpoints::Clear();
    dir_ = (fs::temp_directory_path() /
            ("tpiin_atomic_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    fs::create_directories(dir_);
  }
  void TearDown() override {
    Failpoints::Clear();
    fs::remove_all(dir_);
  }

  std::string dir_;
};

TEST_F(AtomicFileTest, CommitPublishesAndCleansUpTemp) {
  const std::string path = dir_ + "/out.txt";
  AtomicFile file(path);
  ASSERT_TRUE(file.ok());
  file.stream() << "hello\n";
  EXPECT_FALSE(fs::exists(path)) << "nothing visible before commit";
  ASSERT_TRUE(file.Commit().ok());
  EXPECT_EQ(Slurp(path), "hello\n");
  EXPECT_EQ(CountTempFiles(dir_), 0u);
}

TEST_F(AtomicFileTest, DestructionWithoutCommitDiscards) {
  const std::string path = dir_ + "/out.txt";
  {
    AtomicFile file(path);
    file.stream() << "half-written";
  }
  EXPECT_FALSE(fs::exists(path));
  EXPECT_EQ(CountTempFiles(dir_), 0u);
}

TEST_F(AtomicFileTest, AbortedWriteLeavesPreviousFileIntact) {
  const std::string path = dir_ + "/out.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "original").ok());
  {
    AtomicFile file(path);
    file.stream() << "replacement, never committed";
  }
  EXPECT_EQ(Slurp(path), "original");
}

TEST_F(AtomicFileTest, CommitReplacesExistingFile) {
  const std::string path = dir_ + "/out.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "old").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "new").ok());
  EXPECT_EQ(Slurp(path), "new");
}

TEST_F(AtomicFileTest, BinaryModeRoundTrips) {
  const std::string path = dir_ + "/out.bin";
  const std::string payload("\x00\x01\xff\r\n\x00", 6);
  AtomicFile file(path, std::ios::binary);
  ASSERT_TRUE(file.ok());
  file.stream().write(payload.data(),
                      static_cast<std::streamsize>(payload.size()));
  ASSERT_TRUE(file.Commit().ok());
  EXPECT_EQ(Slurp(path, std::ios::binary), payload);
}

TEST_F(AtomicFileTest, CommitIsIdempotent) {
  const std::string path = dir_ + "/out.txt";
  AtomicFile file(path);
  file.stream() << "x";
  ASSERT_TRUE(file.Commit().ok());
  EXPECT_TRUE(file.Commit().ok()) << "second commit reports first result";
  EXPECT_EQ(Slurp(path), "x");
}

TEST_F(AtomicFileTest, UnwritableDirectoryReportsNotOk) {
  AtomicFile file("/no/such/dir/out.txt");
  EXPECT_FALSE(file.ok());
  EXPECT_FALSE(file.Commit().ok());
}

TEST_F(AtomicFileTest, InjectedCommitFailureLeavesTargetUntouched) {
  const std::string path = dir_ + "/out.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "original").ok());
  ASSERT_TRUE(Failpoints::Configure("io.atomic.commit:ioerror").ok());
  AtomicFile file(path);
  file.stream() << "doomed";
  EXPECT_TRUE(file.Commit().IsIOError());
  Failpoints::Clear();
  EXPECT_EQ(Slurp(path), "original");
  EXPECT_EQ(CountTempFiles(dir_), 0u) << "failed commit removes its temp";
}

TEST_F(AtomicFileTest, WriteFileAtomicHelper) {
  const std::string path = dir_ + "/helper.txt";
  ASSERT_TRUE(WriteFileAtomic(path, "contents").ok());
  EXPECT_EQ(Slurp(path), "contents");
  EXPECT_EQ(CountTempFiles(dir_), 0u);
}

}  // namespace
}  // namespace tpiin

#include "common/failpoint.h"

#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

namespace tpiin {
namespace {

// A Status-returning function guarded by a failpoint, the way library
// code uses the macro.
Status GuardedA() {
  TPIIN_FAILPOINT("test.site.a");
  return Status::OK();
}

Status GuardedB() {
  TPIIN_FAILPOINT("test.site.b");
  return Status::OK();
}

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Clear(); }
  void TearDown() override { Failpoints::Clear(); }
};

TEST_F(FailpointTest, UnconfiguredSiteIsOff) {
  EXPECT_FALSE(Failpoints::AnyActive());
  EXPECT_TRUE(GuardedA().ok());
  // Hits are only counted while a rule is active.
  EXPECT_EQ(Failpoints::HitCount("test.site.a"), 0u);
}

TEST_F(FailpointTest, ErrorPolicyFiresEveryHit) {
  ASSERT_TRUE(Failpoints::Configure("test.site.a:error").ok());
  EXPECT_TRUE(Failpoints::AnyActive());
  EXPECT_TRUE(GuardedA().IsInternal());
  EXPECT_TRUE(GuardedA().IsInternal());
  EXPECT_TRUE(GuardedB().ok()) << "other sites stay off";
}

TEST_F(FailpointTest, IoErrorAndCorruptionPolicies) {
  ASSERT_TRUE(
      Failpoints::Configure("test.site.a:ioerror,test.site.b:corruption")
          .ok());
  EXPECT_TRUE(GuardedA().IsIOError());
  EXPECT_TRUE(GuardedB().IsCorruption());
}

TEST_F(FailpointTest, NthHitPolicyFiresOnceAtN) {
  ASSERT_TRUE(Failpoints::Configure("test.site.a:error@3").ok());
  EXPECT_TRUE(GuardedA().ok());
  EXPECT_TRUE(GuardedA().ok());
  EXPECT_TRUE(GuardedA().IsInternal()) << "third hit fires";
  EXPECT_TRUE(GuardedA().ok()) << "and only the third";
}

TEST_F(FailpointTest, WildcardMatchesEverySite) {
  ASSERT_TRUE(Failpoints::Configure("*:ioerror").ok());
  EXPECT_TRUE(GuardedA().IsIOError());
  EXPECT_TRUE(GuardedB().IsIOError());
}

TEST_F(FailpointTest, OffExemptsOneSiteFromWildcard) {
  ASSERT_TRUE(Failpoints::Configure("*:ioerror,test.site.b:off").ok());
  EXPECT_TRUE(GuardedA().IsIOError());
  EXPECT_TRUE(GuardedB().ok());
}

TEST_F(FailpointTest, PrefixWildcardMatchesSubsystem) {
  // `test.site.*` covers both sites; `other.*` covers neither.
  ASSERT_TRUE(Failpoints::Configure("test.site.*:ioerror").ok());
  EXPECT_TRUE(GuardedA().IsIOError());
  EXPECT_TRUE(GuardedB().IsIOError());
  ASSERT_TRUE(Failpoints::Configure("other.*:ioerror").ok());
  EXPECT_TRUE(GuardedA().ok());
  EXPECT_TRUE(GuardedB().ok());
}

TEST_F(FailpointTest, ExactAndLongerPrefixBeatPrefixWildcard) {
  // Precedence: exact name, then the longest matching prefix rule,
  // then the global star.
  ASSERT_TRUE(
      Failpoints::Configure("test.*:ioerror,test.site.a:off").ok());
  EXPECT_TRUE(GuardedA().ok());
  EXPECT_TRUE(GuardedB().IsIOError());
  ASSERT_TRUE(
      Failpoints::Configure("test.*:corruption,test.site.*:ioerror").ok());
  EXPECT_TRUE(GuardedA().IsIOError()) << "longest prefix wins";
  ASSERT_TRUE(Failpoints::Configure("*:corruption,test.site.*:off").ok());
  EXPECT_TRUE(GuardedA().ok()) << "prefix rule shields from global star";
}

TEST_F(FailpointTest, SeededProbabilisticScheduleIsDeterministic) {
  constexpr int kHits = 200;
  std::vector<bool> first;
  ASSERT_TRUE(Failpoints::Configure("test.site.a:p0.5@42").ok());
  for (int i = 0; i < kHits; ++i) first.push_back(!GuardedA().ok());

  Failpoints::Clear();
  ASSERT_TRUE(Failpoints::Configure("test.site.a:p0.5@42").ok());
  std::vector<bool> second;
  for (int i = 0; i < kHits; ++i) second.push_back(!GuardedA().ok());

  EXPECT_EQ(first, second) << "same seed -> same injection schedule";
  size_t fired = 0;
  for (bool b : first) fired += b;
  EXPECT_GT(fired, 0u);
  EXPECT_LT(fired, static_cast<size_t>(kHits));
}

TEST_F(FailpointTest, DifferentSeedsGiveDifferentSchedules) {
  constexpr int kHits = 200;
  std::vector<bool> a;
  ASSERT_TRUE(Failpoints::Configure("test.site.a:p0.5@1").ok());
  for (int i = 0; i < kHits; ++i) a.push_back(!GuardedA().ok());
  Failpoints::Clear();
  ASSERT_TRUE(Failpoints::Configure("test.site.a:p0.5@2").ok());
  std::vector<bool> b;
  for (int i = 0; i < kHits; ++i) b.push_back(!GuardedA().ok());
  EXPECT_NE(a, b);
}

TEST_F(FailpointTest, HitCountersAndSites) {
  ASSERT_TRUE(Failpoints::Configure("test.site.a:error@100").ok());
  for (int i = 0; i < 5; ++i) (void)GuardedA();
  (void)GuardedB();
  EXPECT_EQ(Failpoints::HitCount("test.site.a"), 5u);
  EXPECT_EQ(Failpoints::HitCount("test.site.b"), 1u);
  EXPECT_EQ(Failpoints::HitSites(),
            (std::vector<std::string>{"test.site.a", "test.site.b"}));
}

TEST_F(FailpointTest, BadGrammarRejectedAndPreviousConfigKept) {
  ASSERT_TRUE(Failpoints::Configure("test.site.a:error").ok());
  EXPECT_TRUE(Failpoints::Configure("nonsense").IsInvalidArgument());
  EXPECT_TRUE(Failpoints::Configure("test.site.a:bogus").IsInvalidArgument());
  EXPECT_TRUE(Failpoints::Configure("test.site.a:p1.5").IsInvalidArgument());
  EXPECT_TRUE(GuardedA().IsInternal()) << "old rule still active";
}

TEST_F(FailpointTest, EmptySpecAndClearDisable) {
  ASSERT_TRUE(Failpoints::Configure("test.site.a:error").ok());
  ASSERT_TRUE(Failpoints::Configure("").ok());
  EXPECT_FALSE(Failpoints::AnyActive());
  EXPECT_TRUE(GuardedA().ok());

  ASSERT_TRUE(Failpoints::Configure("test.site.a:error").ok());
  Failpoints::Clear();
  EXPECT_FALSE(Failpoints::AnyActive());
  EXPECT_TRUE(GuardedA().ok());
}

TEST_F(FailpointTest, ConfigureFromEnvHonorsVariable) {
  ASSERT_EQ(::setenv("TPIIN_FAILPOINTS", "test.site.a:corruption", 1), 0);
  EXPECT_TRUE(Failpoints::ConfigureFromEnv().ok());
  EXPECT_TRUE(GuardedA().IsCorruption());
  ASSERT_EQ(::unsetenv("TPIIN_FAILPOINTS"), 0);
}

}  // namespace
}  // namespace tpiin

// ThreadPool: the persistent chunk-stealing worker pool behind the
// detector's per-subTPIIN stage. Key contracts: every index runs exactly
// once, the caller always participates (so zero workers / parallelism 1 /
// nested calls all complete), and pool threads are reused across
// ParallelFor calls instead of being spawned per call.

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace tpiin {
namespace {

TEST(ResolveThreadCountTest, ZeroAutoDetects) {
  EXPECT_GE(ResolveThreadCount(0), 1u);
  EXPECT_EQ(ResolveThreadCount(1), 1u);
  EXPECT_EQ(ResolveThreadCount(7), 7u);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<uint32_t>> hits(kCount);
  pool.ParallelFor(kCount, 4, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1u) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroCountIsANoOp) {
  ThreadPool pool(2);
  std::atomic<size_t> calls{0};
  pool.ParallelFor(0, 4, [&](size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0u);
}

TEST(ThreadPoolTest, ParallelismOneRunsInlineOnTheCaller) {
  ThreadPool pool(2);
  std::thread::id caller = std::this_thread::get_id();
  std::atomic<bool> all_inline{true};
  pool.ParallelFor(64, 1, [&](size_t) {
    if (std::this_thread::get_id() != caller) all_inline = false;
  });
  EXPECT_TRUE(all_inline.load());
}

TEST(ThreadPoolTest, ZeroWorkerPoolStillCompletes) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0u);
  std::atomic<size_t> sum{0};
  pool.ParallelFor(100, 8, [&](size_t i) { sum += i; });
  EXPECT_EQ(sum.load(), 4950u);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<size_t> inner_total{0};
  pool.ParallelFor(4, 4, [&](size_t) {
    // A worker calling back into the pool must make progress even with
    // every other worker busy: the caller drains its own loop.
    pool.ParallelFor(8, 4, [&](size_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 32u);
}

TEST(ThreadPoolTest, ReusesWorkerThreadsAcrossCalls) {
  ThreadPool pool(2);
  std::mutex mu;
  std::set<std::thread::id> observed;
  for (int round = 0; round < 20; ++round) {
    pool.ParallelFor(32, 3, [&](size_t) {
      std::lock_guard<std::mutex> lock(mu);
      observed.insert(std::this_thread::get_id());
    });
  }
  // 20 rounds ran on at most caller + 2 persistent workers. Per-call
  // thread spawning would have no such bound (fresh ids each round).
  EXPECT_LE(observed.size(), 3u);
}

TEST(ThreadPoolTest, GlobalPoolIsASingleton) {
  ThreadPool& a = ThreadPool::Global();
  ThreadPool& b = ThreadPool::Global();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.num_workers(), ResolveThreadCount(0));
  std::atomic<size_t> calls{0};
  a.ParallelFor(10, 4, [&](size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 10u);
}

}  // namespace
}  // namespace tpiin

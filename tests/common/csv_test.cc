#include "common/csv.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

namespace tpiin {
namespace {

std::string TempPath(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

TEST(ParseCsvLineTest, PlainFields) {
  auto fields = ParseCsvLine("a,b,c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ParseCsvLineTest, EmptyFields) {
  auto fields = ParseCsvLine(",,");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"", "", ""}));
}

TEST(ParseCsvLineTest, QuotedFieldsWithCommasAndQuotes) {
  auto fields = ParseCsvLine("\"a,b\",\"say \"\"hi\"\"\",plain");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields,
            (std::vector<std::string>{"a,b", "say \"hi\"", "plain"}));
}

TEST(ParseCsvLineTest, Errors) {
  EXPECT_TRUE(ParseCsvLine("\"unterminated").status().IsCorruption());
  EXPECT_TRUE(ParseCsvLine("ab\"cd").status().IsCorruption());
}

TEST(EscapeCsvFieldTest, QuotesOnlyWhenNeeded) {
  EXPECT_EQ(EscapeCsvField("plain"), "plain");
  EXPECT_EQ(EscapeCsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(EscapeCsvField("a\"b"), "\"a\"\"b\"");
  EXPECT_EQ(EscapeCsvField(" lead"), "\" lead\"");
  EXPECT_EQ(EscapeCsvField("trail "), "\"trail \"");
}

TEST(CsvRoundTripTest, WriterThenReader) {
  std::string path = TempPath("tpiin_csv_roundtrip.csv");
  {
    CsvWriter writer(path);
    ASSERT_TRUE(writer.ok());
    writer.WriteRow({"id", "name"});
    writer.WriteRow({"1", "Zhang, Wei"});
    writer.WriteRow({"2", "quote\"d"});
    ASSERT_TRUE(writer.Close().ok());
  }
  auto rows = ReadCsvFile(path, {"id", "name"});
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"1", "Zhang, Wei"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"2", "quote\"d"}));
  std::remove(path.c_str());
}

TEST(ReadCsvFileTest, HeaderMismatchIsCorruption) {
  std::string path = TempPath("tpiin_csv_header.csv");
  {
    CsvWriter writer(path);
    writer.WriteRow({"wrong", "header"});
    ASSERT_TRUE(writer.Close().ok());
  }
  EXPECT_TRUE(ReadCsvFile(path, {"id", "name"}).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(ReadCsvFileTest, MissingFileIsIOError) {
  EXPECT_TRUE(
      ReadCsvFile("/nonexistent/dir/file.csv", {}).status().IsIOError());
}

TEST(ReadCsvFileTest, SkipsBlankLinesAndHandlesCrLf) {
  std::string path = TempPath("tpiin_csv_blank.csv");
  {
    std::ofstream out(path);
    out << "a,b\r\n\n1,2\r\n   \n3,4\n";
  }
  auto rows = ReadCsvFile(path, {"a", "b"});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"3", "4"}));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tpiin

#include "common/string_util.h"

#include <gtest/gtest.h>

namespace tpiin {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(SplitWhitespaceTest, CollapsesRuns) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(TrimTest, StripsBothEnds) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim("x"), "x");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("\ta b\n"), "a b");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("tpiin-edge-list", "tpiin"));
  EXPECT_FALSE(StartsWith("tp", "tpiin"));
  EXPECT_TRUE(EndsWith("data.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", "data.csv"));
}

TEST(ParseInt64Test, ValidInputs) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_EQ(*ParseInt64("  15 "), 15);
  EXPECT_EQ(*ParseInt64("0"), 0);
}

TEST(ParseInt64Test, InvalidInputs) {
  EXPECT_TRUE(ParseInt64("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseInt64("abc").status().IsInvalidArgument());
  EXPECT_TRUE(ParseInt64("12x").status().IsInvalidArgument());
  EXPECT_TRUE(ParseInt64("1.5").status().IsInvalidArgument());
  EXPECT_TRUE(
      ParseInt64("99999999999999999999999").status().IsOutOfRange());
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_TRUE(ParseDouble("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseDouble("x12").status().IsInvalidArgument());
}

TEST(FormatWithCommasTest, GroupsDigits) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
}

TEST(FormatDoubleTest, FixedDigits) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

TEST(StringPrintfTest, FormatsLikePrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StringPrintf("%.3f", 0.5), "0.500");
  EXPECT_EQ(StringPrintf("empty"), "empty");
  // Long output exercises the two-pass sizing.
  std::string big = StringPrintf("%0512d", 1);
  EXPECT_EQ(big.size(), 512u);
}

}  // namespace
}  // namespace tpiin

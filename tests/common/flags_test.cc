#include "common/flags.h"

#include <gtest/gtest.h>

namespace tpiin {
namespace {

class FlagsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    flags_.DefineInt64("seed", 42, "RNG seed");
    flags_.DefineDouble("p", 0.002, "trading probability");
    flags_.DefineString("out", "report.txt", "output path");
    flags_.DefineBool("verbose", false, "chatty output");
  }

  Status Parse(std::vector<const char*> argv) {
    argv.insert(argv.begin(), "prog");
    return flags_.Parse(static_cast<int>(argv.size()), argv.data());
  }

  FlagParser flags_;
};

TEST_F(FlagsTest, DefaultsHoldWithoutArgs) {
  ASSERT_TRUE(Parse({}).ok());
  EXPECT_EQ(flags_.GetInt64("seed"), 42);
  EXPECT_DOUBLE_EQ(flags_.GetDouble("p"), 0.002);
  EXPECT_EQ(flags_.GetString("out"), "report.txt");
  EXPECT_FALSE(flags_.GetBool("verbose"));
}

TEST_F(FlagsTest, EqualsSyntax) {
  ASSERT_TRUE(Parse({"--seed=7", "--p=0.05", "--out=x.txt"}).ok());
  EXPECT_EQ(flags_.GetInt64("seed"), 7);
  EXPECT_DOUBLE_EQ(flags_.GetDouble("p"), 0.05);
  EXPECT_EQ(flags_.GetString("out"), "x.txt");
}

TEST_F(FlagsTest, SpaceSyntax) {
  ASSERT_TRUE(Parse({"--seed", "9", "--out", "y.txt"}).ok());
  EXPECT_EQ(flags_.GetInt64("seed"), 9);
  EXPECT_EQ(flags_.GetString("out"), "y.txt");
}

TEST_F(FlagsTest, BareBoolAndExplicitBool) {
  ASSERT_TRUE(Parse({"--verbose"}).ok());
  EXPECT_TRUE(flags_.GetBool("verbose"));
  FlagParser fresh;
  fresh.DefineBool("verbose", true, "");
  const char* argv[] = {"prog", "--verbose=false"};
  ASSERT_TRUE(fresh.Parse(2, argv).ok());
  EXPECT_FALSE(fresh.GetBool("verbose"));
}

TEST_F(FlagsTest, PositionalArgumentsCollected) {
  ASSERT_TRUE(Parse({"input.csv", "--seed=1", "other"}).ok());
  EXPECT_EQ(flags_.positional(),
            (std::vector<std::string>{"input.csv", "other"}));
}

TEST_F(FlagsTest, UnknownFlagIsError) {
  EXPECT_TRUE(Parse({"--bogus=1"}).IsInvalidArgument());
}

TEST_F(FlagsTest, BadValueIsError) {
  EXPECT_TRUE(Parse({"--seed=abc"}).IsInvalidArgument());
  EXPECT_TRUE(Parse({"--p=xyz"}).IsInvalidArgument());
  EXPECT_TRUE(Parse({"--verbose=maybe"}).IsInvalidArgument());
}

TEST_F(FlagsTest, MissingValueIsError) {
  EXPECT_TRUE(Parse({"--seed"}).IsInvalidArgument());
}

TEST_F(FlagsTest, HelpRequested) {
  ASSERT_TRUE(Parse({"--help"}).ok());
  EXPECT_TRUE(flags_.help_requested());
  std::string usage = flags_.Usage("prog");
  EXPECT_NE(usage.find("--seed"), std::string::npos);
  EXPECT_NE(usage.find("RNG seed"), std::string::npos);
}

}  // namespace
}  // namespace tpiin

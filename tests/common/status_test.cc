#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace tpiin {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::NotFound("missing").message(), "missing");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::Corruption("bad header");
  EXPECT_EQ(s.ToString(), "Corruption: bad header");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "IOError");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  TPIIN_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacroPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_TRUE(Chained(-1).IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsStatus) {
  Result<int> r = Status::NotFound("nope");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, OkStatusConstructionBecomesInternalError) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsInternal());
}

TEST(ResultTest, MoveOutExtractsValue) {
  Result<std::string> r = std::string("payload");
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  TPIIN_ASSIGN_OR_RETURN(int h, Half(x));
  return Half(h);
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalidArgument());  // 6/2=3 is odd.
  EXPECT_TRUE(Quarter(3).status().IsInvalidArgument());
}

}  // namespace
}  // namespace tpiin

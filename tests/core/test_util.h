#ifndef TPIIN_TESTS_CORE_TEST_UTIL_H_
#define TPIIN_TESTS_CORE_TEST_UTIL_H_

#include <algorithm>
#include <string>
#include <tuple>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "core/matcher.h"
#include "fusion/tpiin.h"

namespace tpiin {

/// Builds a random small valid TPIIN: persons with influence arcs into
/// companies, an index-ordered (hence acyclic) company investment layer,
/// and a random trading layer. Some companies intentionally receive no
/// influence arc so the influence-indegree-zero root rule is exercised.
inline Tpiin RandomTpiin(uint64_t seed, NodeId max_persons = 6,
                         NodeId max_companies = 10) {
  Rng rng(seed);
  const NodeId persons = 1 + static_cast<NodeId>(rng.UniformU64(max_persons));
  const NodeId companies =
      2 + static_cast<NodeId>(rng.UniformU64(max_companies - 1));
  TpiinBuilder builder;
  std::vector<NodeId> person_nodes;
  std::vector<NodeId> company_nodes;
  for (NodeId i = 0; i < persons; ++i) {
    person_nodes.push_back(
        builder.AddPersonNode(StringPrintf("P%u", i)));
  }
  for (NodeId i = 0; i < companies; ++i) {
    company_nodes.push_back(
        builder.AddCompanyNode(StringPrintf("C%u", i)));
  }
  // Person -> company influence.
  for (NodeId p = 0; p < persons; ++p) {
    uint64_t links = rng.UniformU64(3);
    for (uint64_t k = 0; k < links; ++k) {
      builder.AddInfluenceArc(
          person_nodes[p],
          company_nodes[rng.UniformU64(companies)]);
    }
  }
  // Company -> company investment, index-ordered so the antecedent stays
  // a DAG.
  for (NodeId c = 1; c < companies; ++c) {
    if (rng.Bernoulli(0.5)) {
      builder.AddInfluenceArc(company_nodes[rng.UniformU64(c)],
                              company_nodes[c]);
    }
    if (c >= 2 && rng.Bernoulli(0.2)) {
      builder.AddInfluenceArc(company_nodes[rng.UniformU64(c)],
                              company_nodes[c]);
    }
  }
  // Trading layer.
  uint64_t trades = 1 + rng.UniformU64(2 * companies);
  for (uint64_t k = 0; k < trades; ++k) {
    NodeId a = static_cast<NodeId>(rng.UniformU64(companies));
    NodeId b = static_cast<NodeId>(rng.UniformU64(companies));
    if (a == b) continue;
    builder.AddTradingArc(company_nodes[a], company_nodes[b]);
  }
  Result<Tpiin> net = builder.Build();
  TPIIN_CHECK(net.ok()) << net.status().ToString();
  return std::move(net).value();
}

/// Canonical comparison key of a pairwise suspicious group.
using GroupKey = std::tuple<NodeId, std::vector<NodeId>, NodeId,
                            std::vector<NodeId>>;

inline GroupKey KeyOf(const SuspiciousGroup& group) {
  return {group.antecedent, group.trade_trail, group.trade_buyer,
          group.partner_trail};
}

inline std::vector<GroupKey> PairwiseKeys(
    const std::vector<SuspiciousGroup>& groups) {
  std::vector<GroupKey> keys;
  for (const SuspiciousGroup& group : groups) {
    if (!group.from_cycle) keys.push_back(KeyOf(group));
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace tpiin

#endif  // TPIIN_TESTS_CORE_TEST_UTIL_H_

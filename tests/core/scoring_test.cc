#include "core/scoring.h"

#include <gtest/gtest.h>

#include "datagen/worked_example.h"
#include "tests/core/test_util.h"

namespace tpiin {
namespace {

// Two triangles sharing a WCC: a strong one (full-weight arcs) and a
// weak one (0.3-weight arcs).
Tpiin TwoTriangleNet() {
  TpiinBuilder builder;
  NodeId p = builder.AddPersonNode("P");
  NodeId c1 = builder.AddCompanyNode("C1");
  NodeId c2 = builder.AddCompanyNode("C2");
  NodeId c3 = builder.AddCompanyNode("C3");
  NodeId c4 = builder.AddCompanyNode("C4");
  builder.AddInfluenceArc(p, c1, 1.0);
  builder.AddInfluenceArc(p, c2, 1.0);
  builder.AddInfluenceArc(p, c3, 0.3);
  builder.AddInfluenceArc(p, c4, 0.3);
  builder.AddTradingArc(c1, c2);  // Strong triangle.
  builder.AddTradingArc(c3, c4);  // Weak triangle.
  auto net = builder.Build();
  EXPECT_TRUE(net.ok());
  return std::move(net).value();
}

TEST(ScoringTest, StrongChainOutranksWeakChain) {
  Tpiin net = TwoTriangleNet();
  auto detection = DetectSuspiciousGroups(net);
  ASSERT_TRUE(detection.ok());
  ScoringResult scoring = ScoreDetection(net, *detection);
  ASSERT_EQ(scoring.ranked_trades.size(), 2u);
  EXPECT_EQ(net.Label(scoring.ranked_trades[0].seller), "C1");
  EXPECT_DOUBLE_EQ(scoring.ranked_trades[0].score, 1.0);
  EXPECT_EQ(net.Label(scoring.ranked_trades[1].seller), "C3");
  EXPECT_NEAR(scoring.ranked_trades[1].score, 0.09, 1e-9);  // 0.3 * 0.3.
}

TEST(ScoringTest, GroupScoresParallelToGroups) {
  Tpiin net = TwoTriangleNet();
  auto detection = DetectSuspiciousGroups(net);
  ASSERT_TRUE(detection.ok());
  ScoringResult scoring = ScoreDetection(net, *detection);
  ASSERT_EQ(scoring.group_scores.size(), detection->groups.size());
  for (double score : scoring.group_scores) {
    EXPECT_GT(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
}

TEST(ScoringTest, MinimumAggregationUsesWeakestLink) {
  // P -> H (0.9), H -> C1 (0.4), H -> C2 (0.8); trade C1 -> C2.
  TpiinBuilder builder;
  NodeId p = builder.AddPersonNode("P");
  NodeId h = builder.AddCompanyNode("H");
  NodeId c1 = builder.AddCompanyNode("C1");
  NodeId c2 = builder.AddCompanyNode("C2");
  builder.AddInfluenceArc(p, h, 0.9);
  builder.AddInfluenceArc(h, c1, 0.4);
  builder.AddInfluenceArc(h, c2, 0.8);
  builder.AddTradingArc(c1, c2);
  auto net = builder.Build();
  ASSERT_TRUE(net.ok());
  auto detection = DetectSuspiciousGroups(*net);
  ASSERT_TRUE(detection.ok());
  ASSERT_EQ(detection->groups.size(), 1u);

  ScoringOptions min_options;
  min_options.aggregation = ScoringOptions::TrailAggregation::kMinimum;
  ScoringResult min_scoring =
      ScoreDetection(*net, *detection, min_options);
  EXPECT_NEAR(min_scoring.group_scores[0], 0.4, 1e-9);

  ScoringResult product_scoring = ScoreDetection(*net, *detection);
  // Trail1: 0.9 * 0.4; trail2: 0.9 * 0.8; product = 0.2592.
  EXPECT_NEAR(product_scoring.group_scores[0], 0.9 * 0.4 * 0.9 * 0.8,
              1e-9);
}

TEST(ScoringTest, NoisyOrAccumulatesMultipleProofChains) {
  // Two independent antecedents behind the same trade: P1 (0.5 arcs)
  // and P2 (0.5 arcs).
  TpiinBuilder builder;
  NodeId p1 = builder.AddPersonNode("P1");
  NodeId p2 = builder.AddPersonNode("P2");
  NodeId c1 = builder.AddCompanyNode("C1");
  NodeId c2 = builder.AddCompanyNode("C2");
  builder.AddInfluenceArc(p1, c1, 0.5);
  builder.AddInfluenceArc(p1, c2, 0.5);
  builder.AddInfluenceArc(p2, c1, 0.5);
  builder.AddInfluenceArc(p2, c2, 0.5);
  builder.AddTradingArc(c1, c2);
  auto net = builder.Build();
  ASSERT_TRUE(net.ok());
  auto detection = DetectSuspiciousGroups(*net);
  ASSERT_TRUE(detection.ok());
  ScoringResult scoring = ScoreDetection(*net, *detection);
  ASSERT_EQ(scoring.ranked_trades.size(), 1u);
  EXPECT_EQ(scoring.ranked_trades[0].group_count, 2u);
  // Each group scores 0.25; noisy-or: 1 - 0.75^2 = 0.4375.
  EXPECT_NEAR(scoring.ranked_trades[0].score, 0.4375, 1e-9);
}

TEST(ScoringTest, IntraSyndicateScoresMaximal) {
  TpiinBuilder builder;
  NodeId syn = builder.AddCompanyNode("{A+B}", {1, 2});
  builder.SetInternalInvestments(syn, {{1, 2}, {2, 1}});
  builder.AddIntraSyndicateTrade(syn, 1, 2);
  auto net = builder.Build();
  ASSERT_TRUE(net.ok());
  auto detection = DetectSuspiciousGroups(*net);
  ASSERT_TRUE(detection.ok());
  ScoringResult scoring = ScoreDetection(*net, *detection);
  ASSERT_EQ(scoring.ranked_trades.size(), 1u);
  EXPECT_DOUBLE_EQ(scoring.ranked_trades[0].score, 1.0);
}

TEST(ScoringTest, WorkedExampleAllUnitWeightsScoreOne) {
  // The worked example builds arcs at the default weight 1.0: every
  // proof chain is maximal.
  Tpiin net = BuildWorkedExampleTpiin();
  auto detection = DetectSuspiciousGroups(net);
  ASSERT_TRUE(detection.ok());
  ScoringResult scoring = ScoreDetection(net, *detection);
  for (double score : scoring.group_scores) {
    EXPECT_DOUBLE_EQ(score, 1.0);
  }
  for (const ScoredTrade& trade : scoring.ranked_trades) {
    EXPECT_DOUBLE_EQ(trade.score, 1.0);
  }
}

TEST(ScoringTest, RankingIsDeterministicOnTies) {
  Tpiin net = BuildWorkedExampleTpiin();
  auto detection = DetectSuspiciousGroups(net);
  ASSERT_TRUE(detection.ok());
  ScoringResult a = ScoreDetection(net, *detection);
  ScoringResult b = ScoreDetection(net, *detection);
  ASSERT_EQ(a.ranked_trades.size(), b.ranked_trades.size());
  for (size_t i = 0; i < a.ranked_trades.size(); ++i) {
    EXPECT_EQ(a.ranked_trades[i].seller, b.ranked_trades[i].seller);
    EXPECT_EQ(a.ranked_trades[i].buyer, b.ranked_trades[i].buyer);
  }
  // Ties broken by ascending (seller, buyer).
  for (size_t i = 1; i < a.ranked_trades.size(); ++i) {
    if (a.ranked_trades[i - 1].score == a.ranked_trades[i].score) {
      EXPECT_LT(std::make_pair(a.ranked_trades[i - 1].seller,
                               a.ranked_trades[i - 1].buyer),
                std::make_pair(a.ranked_trades[i].seller,
                               a.ranked_trades[i].buyer));
    }
  }
}

}  // namespace
}  // namespace tpiin

#include "core/baseline.h"

#include <gtest/gtest.h>

#include "datagen/worked_example.h"
#include "tests/core/test_util.h"

namespace tpiin {
namespace {

TEST(BaselineTest, WorkedExampleMatchesPaper) {
  Tpiin net = BuildWorkedExampleTpiin();
  BaselineResult result = DetectBaseline(net);
  EXPECT_EQ(result.num_simple, 3u);
  EXPECT_EQ(result.num_complex, 0u);
  EXPECT_EQ(result.suspicious_trades.size(), 3u);
}

TEST(BaselineTest, AllAnchorsFindsAtLeastRootAnchoredArcs) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Tpiin net = RandomTpiin(seed);
    BaselineResult root = DetectBaseline(net);
    BaselineOptions options;
    options.anchor = BaselineAnchor::kAllNodes;
    BaselineResult all = DetectBaseline(net, options);
    // All-anchors finds every root-anchored group plus mid-DAG ones.
    EXPECT_GE(all.num_simple + all.num_complex,
              root.num_simple + root.num_complex);
    // Arc sets coincide (the completeness property).
    EXPECT_EQ(all.suspicious_trades, root.suspicious_trades);
  }
}

TEST(BaselineTest, TrailEnumerationCountsPrefixes) {
  // P -> C1 -> C2 with no trades: from P the paths are {P}, {P,C1},
  // {P,C1,C2}; from C1: {C1}, {C1,C2}; from C2: {C2}.
  TpiinBuilder builder;
  NodeId p = builder.AddPersonNode("P");
  NodeId c1 = builder.AddCompanyNode("C1");
  NodeId c2 = builder.AddCompanyNode("C2");
  builder.AddInfluenceArc(p, c1);
  builder.AddInfluenceArc(c1, c2);
  auto net = builder.Build();
  ASSERT_TRUE(net.ok());
  BaselineOptions options;
  options.anchor = BaselineAnchor::kAllNodes;
  BaselineResult result = DetectBaseline(*net, options);
  EXPECT_EQ(result.num_trails_enumerated, 6u);
}

TEST(BaselineTest, MaxGroupsTruncates) {
  Tpiin net = BuildWorkedExampleTpiin();
  BaselineOptions options;
  options.max_groups = 1;
  BaselineResult result = DetectBaseline(net, options);
  EXPECT_TRUE(result.truncated);
  EXPECT_EQ(result.num_simple + result.num_complex, 1u);
}

TEST(BaselineTest, CollectGroupsOffKeepsCounters) {
  Tpiin net = BuildWorkedExampleTpiin();
  BaselineOptions options;
  options.collect_groups = false;
  BaselineResult result = DetectBaseline(net, options);
  EXPECT_TRUE(result.groups.empty());
  EXPECT_EQ(result.num_simple, 3u);
}

}  // namespace
}  // namespace tpiin

// The CSR FrozenGraph fast path must be a pure representation change:
// pattern generation and full detection produce bit-identical output
// whether the walk runs over the frozen spans (use_frozen_graph = true,
// the default) or the legacy Digraph adjacency lists.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "core/pattern_tree.h"
#include "core/subtpiin.h"
#include "datagen/worked_example.h"
#include "tests/core/test_util.h"

namespace tpiin {
namespace {

// Structural equality of two generation results, element by element —
// not just set equality: emission order, arena layout and tree shape
// must all match.
void ExpectIdenticalGen(const PatternGenResult& frozen,
                        const PatternGenResult& legacy,
                        const SubTpiin& sub) {
  EXPECT_EQ(frozen.num_trails, legacy.num_trails);
  EXPECT_EQ(frozen.truncated, legacy.truncated);
  EXPECT_TRUE(frozen.base == legacy.base)
      << "frozen:\n" << FormatPatternBase(sub, frozen.base)
      << "legacy:\n" << FormatPatternBase(sub, legacy.base);
  EXPECT_EQ(frozen.tree.roots, legacy.tree.roots);
  ASSERT_EQ(frozen.tree.nodes.size(), legacy.tree.nodes.size());
  for (size_t i = 0; i < frozen.tree.nodes.size(); ++i) {
    EXPECT_EQ(frozen.tree.nodes[i].graph_node,
              legacy.tree.nodes[i].graph_node) << "tree node " << i;
    EXPECT_EQ(frozen.tree.nodes[i].parent, legacy.tree.nodes[i].parent);
    EXPECT_EQ(frozen.tree.nodes[i].via_trading_arc,
              legacy.tree.nodes[i].via_trading_arc);
    EXPECT_EQ(frozen.tree.nodes[i].via_arc, legacy.tree.nodes[i].via_arc);
  }
}

void ExpectIdenticalDetection(const Tpiin& net) {
  DetectorOptions frozen_opts;
  frozen_opts.use_frozen_graph = true;
  frozen_opts.emit_pattern_bases = true;
  auto frozen = DetectSuspiciousGroups(net, frozen_opts);
  ASSERT_TRUE(frozen.ok()) << frozen.status().ToString();

  DetectorOptions legacy_opts = frozen_opts;
  legacy_opts.use_frozen_graph = false;
  auto legacy = DetectSuspiciousGroups(net, legacy_opts);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();

  EXPECT_EQ(frozen->num_simple, legacy->num_simple);
  EXPECT_EQ(frozen->num_complex, legacy->num_complex);
  EXPECT_EQ(frozen->num_cycle_groups, legacy->num_cycle_groups);
  EXPECT_EQ(frozen->num_trails, legacy->num_trails);
  EXPECT_EQ(frozen->num_subtpiins, legacy->num_subtpiins);
  EXPECT_EQ(frozen->truncated, legacy->truncated);
  EXPECT_EQ(frozen->suspicious_trades, legacy->suspicious_trades);

  // Groups must match in content AND order (bit-identical pipelines).
  ASSERT_EQ(frozen->groups.size(), legacy->groups.size());
  for (size_t i = 0; i < frozen->groups.size(); ++i) {
    EXPECT_EQ(frozen->groups[i].Format(net), legacy->groups[i].Format(net))
        << "group " << i;
    EXPECT_EQ(frozen->groups[i].members, legacy->groups[i].members);
  }
}

TEST(FrozenEquivalenceTest, WorkedExampleDetectionIsIdentical) {
  ExpectIdenticalDetection(BuildWorkedExampleTpiin());
}

TEST(FrozenEquivalenceTest, WorkedExamplePatternBaseIsIdentical) {
  Tpiin net = BuildWorkedExampleTpiin();
  std::vector<SubTpiin> subs = SegmentTpiin(net);
  ASSERT_EQ(subs.size(), 1u);
  ASSERT_TRUE(subs[0].frozen_in_sync());

  PatternGenOptions frozen_opts;
  frozen_opts.use_frozen_graph = true;
  auto frozen = GeneratePatternBase(subs[0], frozen_opts);
  ASSERT_TRUE(frozen.ok());

  PatternGenOptions legacy_opts;
  legacy_opts.use_frozen_graph = false;
  auto legacy = GeneratePatternBase(subs[0], legacy_opts);
  ASSERT_TRUE(legacy.ok());

  EXPECT_EQ(frozen->base.size(), 15u);  // Fig. 10.
  ExpectIdenticalGen(*frozen, *legacy, subs[0]);
}

TEST(FrozenEquivalenceTest, RandomNetsDetectionIsIdentical) {
  for (uint64_t seed = 0; seed < 40; ++seed) {
    SCOPED_TRACE(seed);
    ExpectIdenticalDetection(
        RandomTpiin(seed, /*max_persons=*/10, /*max_companies=*/20));
  }
}

TEST(FrozenEquivalenceTest, RandomNetsPatternBasesAreIdentical) {
  for (uint64_t seed = 100; seed < 120; ++seed) {
    SCOPED_TRACE(seed);
    Tpiin net = RandomTpiin(seed, /*max_persons=*/8, /*max_companies=*/16);
    for (const SubTpiin& sub : SegmentTpiin(net)) {
      ASSERT_TRUE(sub.frozen_in_sync());
      PatternGenOptions frozen_opts;
      frozen_opts.use_frozen_graph = true;
      PatternGenOptions legacy_opts;
      legacy_opts.use_frozen_graph = false;
      auto frozen = GeneratePatternBase(sub, frozen_opts);
      auto legacy = GeneratePatternBase(sub, legacy_opts);
      ASSERT_TRUE(frozen.ok());
      ASSERT_TRUE(legacy.ok());
      ExpectIdenticalGen(*frozen, *legacy, sub);
    }
  }
}

// Truncation valves must fire identically: the frozen driver checks the
// budget and the length cap at the same points in the walk.
TEST(FrozenEquivalenceTest, TruncationBehavesIdentically) {
  for (uint64_t seed = 200; seed < 210; ++seed) {
    SCOPED_TRACE(seed);
    Tpiin net = RandomTpiin(seed, /*max_persons=*/8, /*max_companies=*/16);
    for (const SubTpiin& sub : SegmentTpiin(net)) {
      for (size_t max_trails : {size_t{1}, size_t{3}}) {
        for (size_t max_len : {size_t{0}, size_t{2}}) {
          PatternGenOptions frozen_opts;
          frozen_opts.max_trails = max_trails;
          frozen_opts.max_trail_length = max_len;
          frozen_opts.use_frozen_graph = true;
          PatternGenOptions legacy_opts = frozen_opts;
          legacy_opts.use_frozen_graph = false;
          auto frozen = GeneratePatternBase(sub, frozen_opts);
          auto legacy = GeneratePatternBase(sub, legacy_opts);
          ASSERT_TRUE(frozen.ok());
          ASSERT_TRUE(legacy.ok());
          ExpectIdenticalGen(*frozen, *legacy, sub);
        }
      }
    }
  }
}

// A hand-built SubTpiin that never called Freeze() must silently take
// the legacy path instead of walking a stale (empty) frozen view.
TEST(FrozenEquivalenceTest, StaleFrozenViewFallsBackToLegacy) {
  Tpiin net = BuildWorkedExampleTpiin();
  std::vector<SubTpiin> subs = SegmentTpiin(net);
  ASSERT_EQ(subs.size(), 1u);
  SubTpiin stale;
  stale.parent = subs[0].parent;
  stale.graph = subs[0].graph;
  stale.num_influence_arcs = subs[0].num_influence_arcs;
  stale.global_of_local = subs[0].global_of_local;
  stale.global_arc_of_local = subs[0].global_arc_of_local;
  ASSERT_FALSE(stale.frozen_in_sync());

  auto gen = GeneratePatternBase(stale);  // use_frozen_graph defaults true.
  ASSERT_TRUE(gen.ok());
  EXPECT_EQ(gen->base.size(), 15u);
}

}  // namespace
}  // namespace tpiin

#include "core/explain.h"

#include <gtest/gtest.h>

#include "datagen/worked_example.h"

namespace tpiin {
namespace {

class ExplainTest : public ::testing::Test {
 protected:
  ExplainTest() : net_(BuildWorkedExampleTpiin()) {
    auto result = DetectSuspiciousGroups(net_);
    EXPECT_TRUE(result.ok());
    detection_ = std::move(result).value();
    scoring_ = ScoreDetection(net_, detection_);
  }

  NodeId NodeByLabel(const std::string& label) const {
    for (NodeId v = 0; v < net_.NumNodes(); ++v) {
      if (net_.Label(v) == label) return v;
    }
    return kInvalidNode;
  }

  Tpiin net_;
  DetectionResult detection_;
  ScoringResult scoring_;
};

TEST_F(ExplainTest, DossierOfInvolvedCompany) {
  NodeId c5 = NodeByLabel("C5");
  ASSERT_NE(c5, kInvalidNode);
  CompanyDossier dossier =
      BuildCompanyDossier(net_, detection_, scoring_, c5);
  // C5 sells to C6 (suspicious) and buys from C3 (suspicious); C5 -> C7
  // is not suspicious.
  ASSERT_EQ(dossier.trades.size(), 2u);
  // Groups containing C5: (L1,...) and (B1, C5, C6).
  EXPECT_EQ(dossier.groups.size(), 2u);
  EXPECT_EQ(dossier.antecedents.size(), 2u);
}

TEST_F(ExplainTest, DossierOfCleanCompanyIsEmpty) {
  NodeId c4 = NodeByLabel("C4");
  ASSERT_NE(c4, kInvalidNode);
  CompanyDossier dossier =
      BuildCompanyDossier(net_, detection_, scoring_, c4);
  EXPECT_TRUE(dossier.trades.empty());
  EXPECT_TRUE(dossier.groups.empty());
  std::string text = FormatCompanyDossier(net_, dossier);
  EXPECT_NE(text.find("No suspicious trading relationships"),
            std::string::npos);
}

TEST_F(ExplainTest, FormatMentionsCounterpartiesAndAntecedents) {
  NodeId c5 = NodeByLabel("C5");
  CompanyDossier dossier =
      BuildCompanyDossier(net_, detection_, scoring_, c5);
  std::string text = FormatCompanyDossier(net_, dossier);
  EXPECT_NE(text.find("Preliminary analysis: C5"), std::string::npos);
  EXPECT_NE(text.find("sells to C6"), std::string::npos);
  EXPECT_NE(text.find("buys from C3"), std::string::npos);
  EXPECT_NE(text.find("B1"), std::string::npos);
  EXPECT_NE(text.find("L1"), std::string::npos);
  EXPECT_NE(text.find("Proof chains:"), std::string::npos);
}

TEST_F(ExplainTest, ExplainGroupNarratesBothTrails) {
  ASSERT_FALSE(detection_.groups.empty());
  const SuspiciousGroup* l1_group = nullptr;
  for (const SuspiciousGroup& group : detection_.groups) {
    if (net_.Label(group.antecedent) == "L1") l1_group = &group;
  }
  ASSERT_NE(l1_group, nullptr);
  std::string text = ExplainGroup(net_, *l1_group);
  EXPECT_NE(text.find("Antecedent L1"), std::string::npos);
  EXPECT_NE(text.find("reaches the seller via"), std::string::npos);
  EXPECT_NE(text.find("the IAT is C3 -> C5"), std::string::npos);
  EXPECT_NE(text.find("simple group"), std::string::npos);
}

TEST_F(ExplainTest, ExplainCircleGroup) {
  TpiinBuilder builder;
  NodeId p = builder.AddPersonNode("P");
  NodeId c1 = builder.AddCompanyNode("C1");
  NodeId c2 = builder.AddCompanyNode("C2");
  builder.AddInfluenceArc(p, c1);
  builder.AddInfluenceArc(c1, c2);
  builder.AddTradingArc(c2, c1);
  auto net = builder.Build();
  ASSERT_TRUE(net.ok());
  auto result = DetectSuspiciousGroups(*net);
  ASSERT_TRUE(result.ok());
  bool narrated_circle = false;
  for (const SuspiciousGroup& group : result->groups) {
    if (group.from_cycle) {
      std::string text = ExplainGroup(*net, group);
      EXPECT_NE(text.find("Circle: C1"), std::string::npos);
      EXPECT_NE(text.find("sells back"), std::string::npos);
      narrated_circle = true;
    }
  }
  EXPECT_TRUE(narrated_circle);
}

}  // namespace
}  // namespace tpiin

#include "core/matcher.h"

#include <set>

#include <gtest/gtest.h>

#include "core/pattern_tree.h"
#include "core/subtpiin.h"
#include "tests/core/test_util.h"

namespace tpiin {
namespace {

struct Prepared {
  Tpiin net;
  std::vector<SubTpiin> subs;
  std::vector<PatternGenResult> gens;
};

Prepared Prepare(Tpiin net) {
  Prepared prepared{std::move(net), {}, {}};
  prepared.subs = SegmentTpiin(prepared.net);
  for (const SubTpiin& sub : prepared.subs) {
    auto gen = GeneratePatternBase(sub);
    EXPECT_TRUE(gen.ok());
    prepared.gens.push_back(std::move(gen).value());
  }
  return prepared;
}

// Triangle of Case 2: investor P-like company structure — a person
// influencing two companies that trade.
Tpiin TriangleNet() {
  TpiinBuilder builder;
  NodeId p = builder.AddPersonNode("P");
  NodeId c1 = builder.AddCompanyNode("C1");
  NodeId c2 = builder.AddCompanyNode("C2");
  builder.AddInfluenceArc(p, c1);
  builder.AddInfluenceArc(p, c2);
  builder.AddTradingArc(c1, c2);
  auto net = builder.Build();
  EXPECT_TRUE(net.ok());
  return std::move(net).value();
}

TEST(MatcherTest, TriangleYieldsOneSimpleGroup) {
  Prepared prepared = Prepare(TriangleNet());
  ASSERT_EQ(prepared.subs.size(), 1u);
  MatchResult match =
      MatchPatterns(prepared.subs[0], prepared.gens[0].base);
  EXPECT_EQ(match.num_simple, 1u);
  EXPECT_EQ(match.num_complex, 0u);
  EXPECT_EQ(match.num_cycle_groups, 0u);
  ASSERT_EQ(match.groups.size(), 1u);
  const SuspiciousGroup& group = match.groups[0];
  EXPECT_EQ(prepared.net.Label(group.antecedent), "P");
  EXPECT_EQ(prepared.net.Label(group.trade_seller), "C1");
  EXPECT_EQ(prepared.net.Label(group.trade_buyer), "C2");
  EXPECT_TRUE(group.is_simple);
  EXPECT_EQ(match.suspicious_trading_arcs.size(), 1u);
}

TEST(MatcherTest, NoCommonAntecedentNoGroup) {
  TpiinBuilder builder;
  NodeId p1 = builder.AddPersonNode("P1");
  NodeId p2 = builder.AddPersonNode("P2");
  NodeId c1 = builder.AddCompanyNode("C1");
  NodeId c2 = builder.AddCompanyNode("C2");
  NodeId c3 = builder.AddCompanyNode("C3");
  builder.AddInfluenceArc(p1, c1);
  builder.AddInfluenceArc(p2, c2);
  builder.AddInfluenceArc(p1, c3);
  builder.AddInfluenceArc(p2, c3);  // Shared company keeps one WCC.
  builder.AddTradingArc(c1, c2);
  auto built = builder.Build();
  ASSERT_TRUE(built.ok());
  Prepared prepared = Prepare(std::move(built).value());
  ASSERT_EQ(prepared.subs.size(), 1u);
  MatchResult match =
      MatchPatterns(prepared.subs[0], prepared.gens[0].base);
  EXPECT_EQ(match.num_simple + match.num_complex, 0u);
  EXPECT_TRUE(match.suspicious_trading_arcs.empty());
}

TEST(MatcherTest, InvestorSellingToInvesteeIsSuspicious) {
  // A == seller degenerate case: C1 invests in C2 and sells to it.
  TpiinBuilder builder;
  NodeId p = builder.AddPersonNode("P");
  NodeId c1 = builder.AddCompanyNode("C1");
  NodeId c2 = builder.AddCompanyNode("C2");
  builder.AddInfluenceArc(p, c1);
  builder.AddInfluenceArc(c1, c2);
  builder.AddTradingArc(c1, c2);
  auto built = builder.Build();
  ASSERT_TRUE(built.ok());
  Prepared prepared = Prepare(std::move(built).value());
  MatchResult match =
      MatchPatterns(prepared.subs[0], prepared.gens[0].base);
  EXPECT_GE(match.num_simple + match.num_complex, 1u);
  EXPECT_EQ(match.suspicious_trading_arcs.size(), 1u);
}

TEST(MatcherTest, InTrailCycleDetected) {
  // P -> C1 -> C2 (investment), trade C2 -> C1: the walk
  // {P, C1, C2, -> C1} contains the circle {C1, C2 -> C1}.
  TpiinBuilder builder;
  NodeId p = builder.AddPersonNode("P");
  NodeId c1 = builder.AddCompanyNode("C1");
  NodeId c2 = builder.AddCompanyNode("C2");
  builder.AddInfluenceArc(p, c1);
  builder.AddInfluenceArc(c1, c2);
  builder.AddTradingArc(c2, c1);
  auto built = builder.Build();
  ASSERT_TRUE(built.ok());
  Prepared prepared = Prepare(std::move(built).value());
  MatchResult match =
      MatchPatterns(prepared.subs[0], prepared.gens[0].base);
  EXPECT_EQ(match.num_cycle_groups, 1u);
  bool found_cycle_group = false;
  for (const SuspiciousGroup& group : match.groups) {
    if (group.from_cycle) {
      found_cycle_group = true;
      EXPECT_EQ(prepared.net.Label(group.antecedent), "C1");
      EXPECT_TRUE(group.is_simple);
    }
  }
  EXPECT_TRUE(found_cycle_group);
  // The pairwise rule also matches (partner prefix {P, C1} from the
  // trail itself), so the arc is suspicious either way.
  EXPECT_EQ(match.suspicious_trading_arcs.size(), 1u);
}

TEST(MatcherTest, ComplexGroupWhenTrailsShareIntermediate) {
  // P -> H; H -> C1, H -> C2 (holding structure); trade C1 -> C2.
  // Both trails pass through H => complex.
  TpiinBuilder builder;
  NodeId p = builder.AddPersonNode("P");
  NodeId h = builder.AddCompanyNode("H");
  NodeId c1 = builder.AddCompanyNode("C1");
  NodeId c2 = builder.AddCompanyNode("C2");
  builder.AddInfluenceArc(p, h);
  builder.AddInfluenceArc(h, c1);
  builder.AddInfluenceArc(h, c2);
  builder.AddTradingArc(c1, c2);
  auto built = builder.Build();
  ASSERT_TRUE(built.ok());
  Prepared prepared = Prepare(std::move(built).value());
  MatchResult match =
      MatchPatterns(prepared.subs[0], prepared.gens[0].base);
  // Anchored at P: trails {P,H,C1->C2} and {P,H,C2} share H -> complex.
  EXPECT_EQ(match.num_complex, 1u);
  EXPECT_EQ(match.num_simple, 0u);
}

TEST(MatcherTest, TwoTradeTrailsDoNotPair) {
  // The paper's π1/π2 counterexample: both trails would contribute a
  // trading arc into the end node, violating Definition 2.
  TpiinBuilder builder;
  NodeId p = builder.AddPersonNode("P");
  NodeId c1 = builder.AddCompanyNode("C1");
  NodeId c2 = builder.AddCompanyNode("C2");
  NodeId c3 = builder.AddCompanyNode("C3");
  builder.AddInfluenceArc(p, c1);
  builder.AddInfluenceArc(p, c2);
  builder.AddInfluenceArc(p, c3);
  builder.AddTradingArc(c1, c3);
  builder.AddTradingArc(c2, c3);
  auto built = builder.Build();
  ASSERT_TRUE(built.ok());
  Prepared prepared = Prepare(std::move(built).value());
  MatchResult match =
      MatchPatterns(prepared.subs[0], prepared.gens[0].base);
  // Each trade pairs with the influence trail {P, C3}; the two trade
  // trails never pair with each other.
  EXPECT_EQ(match.num_simple + match.num_complex, 2u);
  for (const SuspiciousGroup& group : match.groups) {
    // Partner trails carry no trading arc: their last node is the buyer
    // and all hops are influence (validated structurally in the
    // completeness suite); here check buyer consistency.
    EXPECT_EQ(group.partner_trail.back(), group.trade_buyer);
  }
}

TEST(MatcherTest, MaxGroupsTruncates) {
  Prepared prepared = Prepare(RandomTpiin(5));
  MatchOptions options;
  options.max_groups = 1;
  size_t total = 0;
  for (size_t i = 0; i < prepared.subs.size(); ++i) {
    MatchResult match =
        MatchPatterns(prepared.subs[i], prepared.gens[i].base, options);
    total += match.num_simple + match.num_complex + match.num_cycle_groups;
    EXPECT_LE(total, prepared.subs.size());
  }
}

TEST(MatcherTest, GroupMembersAreSortedUniqueUnion) {
  Prepared prepared = Prepare(TriangleNet());
  MatchResult match =
      MatchPatterns(prepared.subs[0], prepared.gens[0].base);
  ASSERT_EQ(match.groups.size(), 1u);
  const SuspiciousGroup& group = match.groups[0];
  EXPECT_TRUE(std::is_sorted(group.members.begin(), group.members.end()));
  std::set<NodeId> expected(group.trade_trail.begin(),
                            group.trade_trail.end());
  expected.insert(group.partner_trail.begin(), group.partner_trail.end());
  expected.insert(group.trade_buyer);
  EXPECT_EQ(std::set<NodeId>(group.members.begin(), group.members.end()),
            expected);
}

TEST(MatcherTest, FormatMentionsLabelsAndFlags) {
  Prepared prepared = Prepare(TriangleNet());
  MatchResult match =
      MatchPatterns(prepared.subs[0], prepared.gens[0].base);
  ASSERT_EQ(match.groups.size(), 1u);
  std::string text = match.groups[0].Format(prepared.net);
  EXPECT_NE(text.find("P"), std::string::npos);
  EXPECT_NE(text.find("C1"), std::string::npos);
  EXPECT_NE(text.find("[simple]"), std::string::npos);
}

// Equivalence: the tree-driven matcher must produce exactly the
// base-driven matcher's result on random networks.
class MatcherEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatcherEquivalenceTest, TreeMatchesBase) {
  Tpiin net = RandomTpiin(GetParam());
  for (const SubTpiin& sub : SegmentTpiin(net)) {
    auto gen = GeneratePatternBase(sub);
    ASSERT_TRUE(gen.ok());
    MatchResult from_base = MatchPatterns(sub, gen->base);
    MatchResult from_tree = MatchPatternsTree(sub, gen->tree);
    EXPECT_EQ(from_base.num_simple, from_tree.num_simple);
    EXPECT_EQ(from_base.num_complex, from_tree.num_complex);
    EXPECT_EQ(from_base.num_cycle_groups, from_tree.num_cycle_groups);
    EXPECT_EQ(from_base.suspicious_trading_arcs,
              from_tree.suspicious_trading_arcs);
    EXPECT_EQ(PairwiseKeys(from_base.groups),
              PairwiseKeys(from_tree.groups));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomNets, MatcherEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace tpiin

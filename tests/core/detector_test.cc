#include "core/detector.h"

#include <gtest/gtest.h>

#include "datagen/worked_example.h"
#include "tests/core/test_util.h"

namespace tpiin {
namespace {

TEST(DetectorTest, EmptyNetworkYieldsNothing) {
  TpiinBuilder builder;
  builder.AddPersonNode("P");
  builder.AddCompanyNode("C");
  auto net = builder.Build();
  ASSERT_TRUE(net.ok());
  auto result = DetectSuspiciousGroups(*net);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->TotalGroups(), 0u);
  EXPECT_TRUE(result->suspicious_trades.empty());
  EXPECT_EQ(result->num_subtpiins, 0u);
}

TEST(DetectorTest, CountingOnlyModeSkipsGroupRecords) {
  Tpiin net = BuildWorkedExampleTpiin();
  DetectorOptions options;
  options.match.collect_groups = false;
  auto result = DetectSuspiciousGroups(net, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->groups.empty());
  EXPECT_EQ(result->num_simple, 3u);
  EXPECT_EQ(result->suspicious_trades.size(), 3u);
}

TEST(DetectorTest, CountsAgreeWithCollectedGroups) {
  for (uint64_t seed = 0; seed < 15; ++seed) {
    Tpiin net = RandomTpiin(seed);
    auto result = DetectSuspiciousGroups(net);
    ASSERT_TRUE(result.ok());
    size_t simple = 0;
    size_t complex_count = 0;
    size_t cycles = 0;
    for (const SuspiciousGroup& group : result->groups) {
      if (group.from_cycle) {
        ++cycles;
      } else if (group.is_simple) {
        ++simple;
      } else {
        ++complex_count;
      }
    }
    EXPECT_EQ(simple, result->num_simple);
    EXPECT_EQ(complex_count, result->num_complex);
    EXPECT_EQ(cycles, result->num_cycle_groups);
  }
}

TEST(DetectorTest, IntraSyndicateTradeProducesFindingWithChain) {
  // Build via TpiinBuilder: a syndicate of {10, 11, 12} with internal
  // ring 10->11->12->10 and an internal trade 10 -> 12.
  TpiinBuilder builder;
  NodeId p = builder.AddPersonNode("P");
  NodeId syn = builder.AddCompanyNode("{A+B+C}", {10, 11, 12});
  builder.SetInternalInvestments(syn, {{10, 11}, {11, 12}, {12, 10}});
  builder.AddInfluenceArc(p, syn);
  builder.AddIntraSyndicateTrade(syn, 10, 12);
  auto net = builder.Build();
  ASSERT_TRUE(net.ok());
  auto result = DetectSuspiciousGroups(*net);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->intra_syndicate.size(), 1u);
  const IntraSyndicateFinding& finding = result->intra_syndicate[0];
  EXPECT_EQ(finding.seller, 10u);
  EXPECT_EQ(finding.buyer, 12u);
  // Proof chain along internal investments: 10 -> 11 -> 12.
  EXPECT_EQ(finding.chain, (std::vector<CompanyId>{10, 11, 12}));
  EXPECT_EQ(result->TotalGroups(), 1u);
}

TEST(DetectorTest, IntraSyndicateCanBeDisabled) {
  TpiinBuilder builder;
  NodeId syn = builder.AddCompanyNode("{A+B}", {1, 2});
  builder.SetInternalInvestments(syn, {{1, 2}, {2, 1}});
  builder.AddIntraSyndicateTrade(syn, 1, 2);
  auto net = builder.Build();
  ASSERT_TRUE(net.ok());
  DetectorOptions options;
  options.include_intra_syndicate = false;
  auto result = DetectSuspiciousGroups(*net, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->intra_syndicate.empty());
}

TEST(DetectorTest, SuspiciousTradesSortedUnique) {
  for (uint64_t seed = 20; seed < 30; ++seed) {
    Tpiin net = RandomTpiin(seed);
    auto result = DetectSuspiciousGroups(net);
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(std::is_sorted(result->suspicious_trades.begin(),
                               result->suspicious_trades.end()));
    EXPECT_EQ(std::adjacent_find(result->suspicious_trades.begin(),
                                 result->suspicious_trades.end()),
              result->suspicious_trades.end());
  }
}

TEST(DetectorTest, TimingsArePopulated) {
  Tpiin net = BuildWorkedExampleTpiin();
  auto result = DetectSuspiciousGroups(net);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->timings.total_seconds, 0.0);
  EXPECT_GE(result->timings.segment_seconds, 0.0);
  EXPECT_LE(result->timings.segment_seconds + result->timings.pattern_seconds +
                result->timings.match_seconds,
            result->timings.total_seconds + 1.0);
}

TEST(DetectorTest, SummaryMentionsCounts) {
  Tpiin net = BuildWorkedExampleTpiin();
  auto result = DetectSuspiciousGroups(net);
  ASSERT_TRUE(result.ok());
  std::string summary = result->Summary();
  EXPECT_NE(summary.find("simple=3"), std::string::npos);
  EXPECT_NE(summary.find("suspicious trades=3 of 5"), std::string::npos);
}

TEST(DetectorTest, SuspiciousTradePercent) {
  Tpiin net = BuildWorkedExampleTpiin();
  auto result = DetectSuspiciousGroups(net);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->SuspiciousTradePercent(), 60.0);  // 3 of 5.
}

TEST(DetectorTest, MaxTrailsTruncationPropagates) {
  Tpiin net = BuildWorkedExampleTpiin();
  DetectorOptions options;
  options.max_trails_per_subtpiin = 4;
  auto result = DetectSuspiciousGroups(net, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->truncated);
  EXPECT_LE(result->num_trails, 4u);
}

}  // namespace
}  // namespace tpiin

// RunBudget graceful degradation: structural caps skip deterministically,
// expired deadlines truncate cleanly, and an unlimited budget changes
// nothing.

#include <gtest/gtest.h>

#include "core/detector.h"
#include "core/pattern_tree.h"
#include "datagen/worked_example.h"
#include "tests/core/test_util.h"

namespace tpiin {
namespace {

TEST(RunBudgetTest, DefaultBudgetIsUnlimited) {
  RunBudget budget;
  EXPECT_TRUE(budget.Unlimited());
  budget.max_sub_nodes = 5;
  EXPECT_FALSE(budget.Unlimited());
}

TEST(RunBudgetTest, SubSkipNamesAreStable) {
  EXPECT_STREQ(SubSkipName(SubSkip::kNone), "none");
  EXPECT_STREQ(SubSkipName(SubSkip::kNodeCap), "node_cap");
  EXPECT_STREQ(SubSkipName(SubSkip::kArcCap), "arc_cap");
  EXPECT_STREQ(SubSkipName(SubSkip::kDeadline), "deadline");
  EXPECT_STREQ(SubSkipName(SubSkip::kSliceTruncated), "slice_truncated");
}

TEST(RunBudgetTest, UnlimitedBudgetMatchesDefaultRun) {
  Tpiin net = BuildWorkedExampleTpiin();
  auto baseline = DetectSuspiciousGroups(net);
  ASSERT_TRUE(baseline.ok());

  DetectorOptions options;
  options.budget = RunBudget{};  // Explicit all-zero.
  auto budgeted = DetectSuspiciousGroups(net, options);
  ASSERT_TRUE(budgeted.ok());
  EXPECT_FALSE(budgeted->degraded);
  EXPECT_EQ(budgeted->num_skipped_subs, 0u);
  EXPECT_EQ(budgeted->TotalGroups(), baseline->TotalGroups());
  EXPECT_EQ(budgeted->suspicious_trades, baseline->suspicious_trades);
}

TEST(RunBudgetTest, NodeCapSkipsOversizedSubTpiins) {
  Tpiin net = BuildWorkedExampleTpiin();
  auto full = DetectSuspiciousGroups(net);
  ASSERT_TRUE(full.ok());
  ASSERT_FALSE(full->sub_profiles.empty());

  // Cap below the largest subTPIIN so at least one is skipped.
  size_t largest = 0;
  for (const SubTpiinProfile& p : full->sub_profiles) {
    largest = std::max(largest, p.num_nodes);
  }
  ASSERT_GT(largest, 1u);

  DetectorOptions options;
  options.budget.max_sub_nodes = largest - 1;
  auto result = DetectSuspiciousGroups(net, options);
  ASSERT_TRUE(result.ok()) << "a binding cap degrades, never fails";
  EXPECT_TRUE(result->degraded);
  EXPECT_GT(result->num_skipped_subs, 0u);
  size_t skipped = 0;
  for (const SubTpiinProfile& p : result->sub_profiles) {
    if (p.skip == SubSkip::kNodeCap) {
      ++skipped;
      EXPECT_GT(p.num_nodes, options.budget.max_sub_nodes);
      EXPECT_EQ(p.num_trails, 0u) << "skipped subTPIINs are not mined";
    }
  }
  EXPECT_EQ(skipped, result->num_skipped_subs);
  EXPECT_LE(result->TotalGroups(), full->TotalGroups())
      << "partial results are a subset, never an invention";
}

TEST(RunBudgetTest, StructuralSkipsAreThreadCountInvariant) {
  Tpiin net = RandomTpiin(7);
  DetectorOptions serial;
  serial.budget.max_sub_arcs = 6;
  serial.num_threads = 1;
  DetectorOptions parallel = serial;
  parallel.num_threads = 8;

  auto a = DetectSuspiciousGroups(net, serial);
  auto b = DetectSuspiciousGroups(net, parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->degraded, b->degraded);
  EXPECT_EQ(a->num_skipped_subs, b->num_skipped_subs);
  EXPECT_EQ(a->suspicious_trades, b->suspicious_trades);
  ASSERT_EQ(a->sub_profiles.size(), b->sub_profiles.size());
  for (size_t i = 0; i < a->sub_profiles.size(); ++i) {
    EXPECT_EQ(a->sub_profiles[i].skip, b->sub_profiles[i].skip);
  }
}

TEST(RunBudgetTest, ExpiredDeadlineSkipsButCompletes) {
  Tpiin net = BuildWorkedExampleTpiin();
  DetectorOptions options;
  // A deadline this small is already expired by the time the first
  // subTPIIN is considered, so every one is skipped with kDeadline.
  options.budget.deadline_seconds = 1e-9;
  auto result = DetectSuspiciousGroups(net, options);
  ASSERT_TRUE(result.ok()) << "deadline degrades, never fails";
  EXPECT_TRUE(result->degraded);
  EXPECT_EQ(result->num_skipped_subs, result->sub_profiles.size());
  for (const SubTpiinProfile& p : result->sub_profiles) {
    EXPECT_EQ(p.skip, SubSkip::kDeadline);
  }
  EXPECT_EQ(result->TotalGroups(), 0u);
}

TEST(RunBudgetTest, DegradedSummaryIsMarked) {
  Tpiin net = BuildWorkedExampleTpiin();
  DetectorOptions options;
  options.budget.deadline_seconds = 1e-9;
  auto result = DetectSuspiciousGroups(net, options);
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->Summary().find("[DEGRADED]"), std::string::npos);
}

TEST(RunBudgetTest, PreExpiredPatternDeadlineTruncatesGeneration) {
  Tpiin net = BuildWorkedExampleTpiin();
  std::vector<SubTpiin> subs = SegmentTpiin(net);
  ASSERT_FALSE(subs.empty());

  PatternGenOptions options;
  options.deadline = Deadline::After(1e-9);
  auto gen = GeneratePatternBase(subs[0], options);
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  EXPECT_TRUE(gen->deadline_expired);
  EXPECT_TRUE(gen->truncated);
}

TEST(RunBudgetTest, UnlimitedDeadlineNeverExpires) {
  Deadline unlimited = Deadline::After(0);
  EXPECT_TRUE(unlimited.unlimited());
  EXPECT_FALSE(unlimited.Expired());
  Deadline finite = Deadline::After(3600);
  EXPECT_FALSE(finite.Expired());
  EXPECT_GT(finite.RemainingSeconds(), 0.0);
  Deadline sooner = Deadline::Sooner(unlimited, finite);
  EXPECT_FALSE(sooner.unlimited());
}

}  // namespace
}  // namespace tpiin

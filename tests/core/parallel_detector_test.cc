// The parallel per-subTPIIN stage (DetectorOptions::num_threads) must be
// a pure performance knob: results identical to single-threaded runs on
// any input.

#include <gtest/gtest.h>

#include "core/detector.h"
#include "datagen/province.h"
#include "fusion/pipeline.h"
#include "tests/core/test_util.h"

namespace tpiin {
namespace {

class ParallelDetectorTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ParallelDetectorTest, MatchesSequentialOnRandomNets) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Tpiin net = RandomTpiin(seed, /*max_persons=*/10,
                            /*max_companies=*/20);
    DetectorOptions sequential;
    auto expected = DetectSuspiciousGroups(net, sequential);
    ASSERT_TRUE(expected.ok());

    DetectorOptions parallel;
    parallel.num_threads = GetParam();
    auto actual = DetectSuspiciousGroups(net, parallel);
    ASSERT_TRUE(actual.ok());

    EXPECT_EQ(actual->num_simple, expected->num_simple);
    EXPECT_EQ(actual->num_complex, expected->num_complex);
    EXPECT_EQ(actual->num_cycle_groups, expected->num_cycle_groups);
    EXPECT_EQ(actual->num_trails, expected->num_trails);
    EXPECT_EQ(actual->suspicious_trades, expected->suspicious_trades);
    EXPECT_EQ(PairwiseKeys(actual->groups), PairwiseKeys(expected->groups));
    // Merge order is deterministic, so even raw group order matches.
    ASSERT_EQ(actual->groups.size(), expected->groups.size());
    for (size_t i = 0; i < actual->groups.size(); ++i) {
      EXPECT_EQ(actual->groups[i].members, expected->groups[i].members);
    }
  }
}

// 0 = auto-detect (hardware_concurrency); must behave like any explicit
// thread count.
INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelDetectorTest,
                         ::testing::Values(0u, 2u, 4u, 8u));

TEST(ParallelDetectorTest, ProvinceScaleCountsMatch) {
  ProvinceConfig config = SmallProvinceConfig(200, 5);
  config.trading_probability = 0.01;
  auto province = GenerateProvince(config);
  ASSERT_TRUE(province.ok());
  auto fused = BuildTpiin(province->dataset);
  ASSERT_TRUE(fused.ok());

  DetectorOptions sequential;
  sequential.match.collect_groups = false;
  auto expected = DetectSuspiciousGroups(fused->tpiin, sequential);
  ASSERT_TRUE(expected.ok());

  DetectorOptions parallel = sequential;
  parallel.num_threads = 4;
  auto actual = DetectSuspiciousGroups(fused->tpiin, parallel);
  ASSERT_TRUE(actual.ok());
  EXPECT_EQ(actual->num_simple, expected->num_simple);
  EXPECT_EQ(actual->num_complex, expected->num_complex);
  EXPECT_EQ(actual->suspicious_trades, expected->suspicious_trades);
}

TEST(ParallelDetectorTest, MoreThreadsThanSubtpiinsIsFine) {
  Tpiin net = RandomTpiin(3);
  DetectorOptions options;
  options.num_threads = 64;
  auto result = DetectSuspiciousGroups(net, options);
  ASSERT_TRUE(result.ok());
}

}  // namespace
}  // namespace tpiin

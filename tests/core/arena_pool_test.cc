// ArenaPool recycles PatternScratch buffers across detector runs. The
// contract under test: acquire/hit accounting is exact, a recycled
// buffer behaves like a fresh one (detection results are identical with
// and without a pool), and concurrent Acquire/Release from many threads
// is safe.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/arena_pool.h"
#include "core/detector.h"
#include "tests/core/test_util.h"

namespace tpiin {
namespace {

TEST(ArenaPoolTest, MissThenHitAccounting) {
  ArenaPool pool;
  EXPECT_EQ(pool.num_acquires(), 0u);
  EXPECT_EQ(pool.num_hits(), 0u);

  PatternScratch scratch = pool.Acquire();
  EXPECT_EQ(pool.num_acquires(), 1u);
  EXPECT_EQ(pool.num_hits(), 0u);

  pool.Release(std::move(scratch));
  PatternScratch recycled = pool.Acquire();
  EXPECT_EQ(pool.num_acquires(), 2u);
  EXPECT_EQ(pool.num_hits(), 1u);
  pool.Release(std::move(recycled));
}

TEST(ArenaPoolTest, DrainingTheShardMissesAgain) {
  ArenaPool pool;
  // Same thread → same shard: two releases stock the free list for two
  // hits, and a third acquire misses again.
  pool.Release(pool.Acquire());
  PatternScratch a = pool.Acquire();
  PatternScratch b = pool.Acquire();
  EXPECT_EQ(pool.num_acquires(), 3u);
  EXPECT_EQ(pool.num_hits(), 1u);
  pool.Release(std::move(a));
  pool.Release(std::move(b));
  pool.Acquire();
  pool.Acquire();
  pool.Acquire();
  EXPECT_EQ(pool.num_acquires(), 6u);
  EXPECT_EQ(pool.num_hits(), 3u);
}

TEST(ArenaPoolTest, DetectionIdenticalWithRecycledBuffers) {
  ArenaPool pool;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Tpiin net = RandomTpiin(seed, /*max_persons=*/10,
                            /*max_companies=*/20);
    DetectorOptions fresh;
    auto expected = DetectSuspiciousGroups(net, fresh);
    ASSERT_TRUE(expected.ok());

    DetectorOptions pooled;
    pooled.arena_pool = &pool;
    // Two passes: the first warms the pool, the second runs entirely on
    // recycled (dirty-then-cleared) buffers.
    for (int pass = 0; pass < 2; ++pass) {
      auto actual = DetectSuspiciousGroups(net, pooled);
      ASSERT_TRUE(actual.ok());
      EXPECT_EQ(actual->num_simple, expected->num_simple);
      EXPECT_EQ(actual->num_complex, expected->num_complex);
      EXPECT_EQ(actual->num_trails, expected->num_trails);
      EXPECT_EQ(actual->suspicious_trades, expected->suspicious_trades);
      EXPECT_EQ(PairwiseKeys(actual->groups),
                PairwiseKeys(expected->groups));
    }
  }
  EXPECT_GT(pool.num_acquires(), 0u);
  // Every seed after the first warm-up run reuses warmed buffers.
  EXPECT_GT(pool.num_hits(), 0u);
}

TEST(ArenaPoolTest, SharedAcrossParallelDetection) {
  ArenaPool pool;
  Tpiin net = RandomTpiin(/*seed=*/2, /*max_persons=*/10,
                          /*max_companies=*/20);
  DetectorOptions sequential;
  auto expected = DetectSuspiciousGroups(net, sequential);
  ASSERT_TRUE(expected.ok());

  DetectorOptions options;
  options.num_threads = 4;
  options.arena_pool = &pool;
  for (int pass = 0; pass < 3; ++pass) {
    auto actual = DetectSuspiciousGroups(net, options);
    ASSERT_TRUE(actual.ok());
    EXPECT_EQ(PairwiseKeys(actual->groups),
              PairwiseKeys(expected->groups));
  }
  EXPECT_GT(pool.num_hits(), 0u);
}

TEST(ArenaPoolTest, ConcurrentAcquireReleaseIsSafe) {
  ArenaPool pool;
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&pool] {
      for (int i = 0; i < kIters; ++i) {
        PatternScratch scratch = pool.Acquire();
        pool.Release(std::move(scratch));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(pool.num_acquires(),
            static_cast<uint64_t>(kThreads) * kIters);
  EXPECT_LE(pool.num_hits(), pool.num_acquires());
  // Steady-state round-trips on a warmed shard are nearly all hits.
  EXPECT_GT(pool.num_hits(), pool.num_acquires() / 2);
}

}  // namespace
}  // namespace tpiin

#include "core/subtpiin.h"

#include <gtest/gtest.h>

#include "common/string_util.h"

namespace tpiin {
namespace {

// Two antecedent components: {P1, C1, C2} and {P2, C3, C4}, with
// internal trades C1->C2, C3->C4 and a cross-component trade C2->C3.
Tpiin TwoComponentNet() {
  TpiinBuilder builder;
  NodeId p1 = builder.AddPersonNode("P1");
  NodeId p2 = builder.AddPersonNode("P2");
  NodeId c1 = builder.AddCompanyNode("C1");
  NodeId c2 = builder.AddCompanyNode("C2");
  NodeId c3 = builder.AddCompanyNode("C3");
  NodeId c4 = builder.AddCompanyNode("C4");
  builder.AddInfluenceArc(p1, c1);
  builder.AddInfluenceArc(p1, c2);
  builder.AddInfluenceArc(p2, c3);
  builder.AddInfluenceArc(p2, c4);
  builder.AddTradingArc(c1, c2);
  builder.AddTradingArc(c3, c4);
  builder.AddTradingArc(c2, c3);  // Cross-component: unsuspicious.
  auto net = builder.Build();
  EXPECT_TRUE(net.ok());
  return std::move(net).value();
}

TEST(SegmentTest, CrossComponentTradesAreDropped) {
  Tpiin net = TwoComponentNet();
  SegmentStats stats;
  std::vector<SubTpiin> subs = SegmentTpiin(net, {}, &stats);
  EXPECT_EQ(stats.num_components, 2u);
  EXPECT_EQ(stats.trading_arcs_internal, 2u);
  EXPECT_EQ(stats.trading_arcs_cross, 1u);
  ASSERT_EQ(subs.size(), 2u);
  for (const SubTpiin& sub : subs) {
    EXPECT_EQ(sub.graph.NumNodes(), 3u);
    EXPECT_EQ(sub.num_influence_arcs, 2u);
    EXPECT_EQ(sub.num_trading_arcs(), 1u);
  }
}

TEST(SegmentTest, LocalGlobalMappingsRoundTrip) {
  Tpiin net = TwoComponentNet();
  for (const SubTpiin& sub : SegmentTpiin(net)) {
    for (NodeId local = 0; local < sub.graph.NumNodes(); ++local) {
      NodeId global = sub.ToGlobal(local);
      EXPECT_LT(global, net.NumNodes());
      EXPECT_EQ(sub.Label(local), net.Label(global));
    }
    for (ArcId local = 0; local < sub.graph.NumArcs(); ++local) {
      const Arc& local_arc = sub.graph.arc(local);
      const Arc& global_arc = net.graph().arc(sub.ToGlobalArc(local));
      EXPECT_EQ(local_arc.color, global_arc.color);
      EXPECT_EQ(sub.ToGlobal(local_arc.src), global_arc.src);
      EXPECT_EQ(sub.ToGlobal(local_arc.dst), global_arc.dst);
    }
  }
}

TEST(SegmentTest, InfluenceArcsPrecedeTradingLocally) {
  Tpiin net = TwoComponentNet();
  for (const SubTpiin& sub : SegmentTpiin(net)) {
    for (ArcId id = 0; id < sub.graph.NumArcs(); ++id) {
      bool is_influence = IsInfluenceArc(sub.graph.arc(id));
      EXPECT_EQ(is_influence, id < sub.num_influence_arcs);
    }
  }
}

TEST(SegmentTest, TradelessComponentsSkippedByDefault) {
  TpiinBuilder builder;
  NodeId p1 = builder.AddPersonNode("P1");
  NodeId c1 = builder.AddCompanyNode("C1");
  NodeId p2 = builder.AddPersonNode("P2");
  NodeId c2 = builder.AddCompanyNode("C2");
  NodeId c3 = builder.AddCompanyNode("C3");
  builder.AddInfluenceArc(p1, c1);
  builder.AddInfluenceArc(p2, c2);
  builder.AddInfluenceArc(p2, c3);
  builder.AddTradingArc(c2, c3);
  auto net = builder.Build();
  ASSERT_TRUE(net.ok());

  SegmentStats stats;
  std::vector<SubTpiin> defaults = SegmentTpiin(*net, {}, &stats);
  EXPECT_EQ(stats.num_components, 2u);
  EXPECT_EQ(defaults.size(), 1u);  // {P1,C1} has no internal trade.

  SegmentOptions keep_all;
  keep_all.skip_tradeless = false;
  EXPECT_EQ(SegmentTpiin(*net, keep_all).size(), 2u);
}

TEST(SegmentTest, SingletonComponentsSkipped) {
  TpiinBuilder builder;
  builder.AddPersonNode("Idle");
  NodeId p = builder.AddPersonNode("P");
  NodeId c1 = builder.AddCompanyNode("C1");
  NodeId c2 = builder.AddCompanyNode("C2");
  builder.AddInfluenceArc(p, c1);
  builder.AddInfluenceArc(p, c2);
  builder.AddTradingArc(c1, c2);
  auto net = builder.Build();
  ASSERT_TRUE(net.ok());
  SegmentStats stats;
  std::vector<SubTpiin> subs = SegmentTpiin(*net, {}, &stats);
  EXPECT_EQ(stats.num_components, 2u);  // The idle person is a singleton.
  EXPECT_EQ(subs.size(), 1u);
}

}  // namespace
}  // namespace tpiin

#include "core/pattern_tree.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/subtpiin.h"
#include "tests/core/test_util.h"

namespace tpiin {
namespace {

// Single-subTPIIN helper nets.
Tpiin DiamondNet() {
  // P -> C1 -> {C2, C3} -> C4 (investment diamond), trade C4 -> C1.
  TpiinBuilder builder;
  NodeId p = builder.AddPersonNode("P");
  NodeId c1 = builder.AddCompanyNode("C1");
  NodeId c2 = builder.AddCompanyNode("C2");
  NodeId c3 = builder.AddCompanyNode("C3");
  NodeId c4 = builder.AddCompanyNode("C4");
  builder.AddInfluenceArc(p, c1);
  builder.AddInfluenceArc(c1, c2);
  builder.AddInfluenceArc(c1, c3);
  builder.AddInfluenceArc(c2, c4);
  builder.AddInfluenceArc(c3, c4);
  builder.AddTradingArc(c4, c1);
  auto net = builder.Build();
  EXPECT_TRUE(net.ok());
  return std::move(net).value();
}

std::vector<SubTpiin> SingleSub(const Tpiin& net) {
  SegmentOptions options;
  options.skip_tradeless = false;
  return SegmentTpiin(net, options);
}

TEST(PatternTreeTest, DiamondEnumeratesBothPaths) {
  Tpiin net = DiamondNet();
  std::vector<SubTpiin> subs = SingleSub(net);
  ASSERT_EQ(subs.size(), 1u);
  auto gen = GeneratePatternBase(subs[0]);
  ASSERT_TRUE(gen.ok());
  // Trails: P,C1,C2,C4 -> C1 and P,C1,C3,C4 -> C1 (both trade-stopped).
  EXPECT_EQ(gen->base.size(), 2u);
  EXPECT_EQ(gen->num_trails, 2u);
  std::set<std::string> formatted;
  for (const auto& t : gen->base) formatted.insert(t.Format(subs[0]));
  EXPECT_TRUE(formatted.count("P, C1, C2, C4 -> C1"));
  EXPECT_TRUE(formatted.count("P, C1, C3, C4 -> C1"));
}

TEST(PatternTreeTest, Rule1StopsAtOutdegreeZero) {
  TpiinBuilder builder;
  NodeId p = builder.AddPersonNode("P");
  NodeId c1 = builder.AddCompanyNode("C1");
  NodeId c2 = builder.AddCompanyNode("C2");
  builder.AddInfluenceArc(p, c1);
  builder.AddInfluenceArc(c1, c2);
  builder.AddTradingArc(c1, c2);  // So the component is kept.
  auto net = builder.Build();
  ASSERT_TRUE(net.ok());
  std::vector<SubTpiin> subs = SingleSub(*net);
  auto gen = GeneratePatternBase(subs[0]);
  ASSERT_TRUE(gen.ok());
  std::set<std::string> formatted;
  for (const auto& t : gen->base) formatted.insert(t.Format(subs[0]));
  // The pure walk P,C1,C2 stops at C2 (outdegree zero); the trade walk
  // P,C1 -> C2 stops at the first trading arc (Rule 2).
  EXPECT_TRUE(formatted.count("P, C1, C2"));
  EXPECT_TRUE(formatted.count("P, C1 -> C2"));
  EXPECT_EQ(formatted.size(), 2u);
}

TEST(PatternTreeTest, Rule2StopsAtFirstTradingArcOnly) {
  // C2 has a further trading arc; a walk through the first trading arc
  // must not continue past it.
  TpiinBuilder builder;
  NodeId p = builder.AddPersonNode("P");
  NodeId c1 = builder.AddCompanyNode("C1");
  NodeId c2 = builder.AddCompanyNode("C2");
  NodeId c3 = builder.AddCompanyNode("C3");
  builder.AddInfluenceArc(p, c1);
  builder.AddInfluenceArc(p, c2);
  builder.AddInfluenceArc(p, c3);
  builder.AddTradingArc(c1, c2);
  builder.AddTradingArc(c2, c3);
  auto net = builder.Build();
  ASSERT_TRUE(net.ok());
  std::vector<SubTpiin> subs = SingleSub(*net);
  auto gen = GeneratePatternBase(subs[0]);
  ASSERT_TRUE(gen.ok());
  for (const auto& t : gen->base) {
    // No trail may contain more than one trading hop: nodes are all
    // influence-reached, plus at most the final trade target.
    EXPECT_LE(t.nodes.size(), 2u);
  }
}

TEST(PatternTreeTest, TrailsStartAtInfluenceIndegreeZeroNodes) {
  Tpiin net = RandomTpiin(99);
  for (const SubTpiin& sub : SegmentTpiin(net)) {
    std::vector<uint32_t> influence_in(sub.graph.NumNodes(), 0);
    for (ArcId id = 0; id < sub.num_influence_arcs; ++id) {
      ++influence_in[sub.graph.arc(id).dst];
    }
    auto gen = GeneratePatternBase(sub);
    ASSERT_TRUE(gen.ok());
    for (const auto& t : gen->base) {
      EXPECT_EQ(influence_in[t.nodes[0]], 0u) << t.Format(sub);
    }
  }
}

TEST(PatternTreeTest, TrailsAreSimplePathsPlusOptionalTrade) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    Tpiin net = RandomTpiin(seed);
    for (const SubTpiin& sub : SegmentTpiin(net)) {
      auto gen = GeneratePatternBase(sub);
      ASSERT_TRUE(gen.ok());
      for (const auto& t : gen->base) {
        // Elements are distinct (Property 1).
        std::set<NodeId> unique(t.nodes.begin(), t.nodes.end());
        EXPECT_EQ(unique.size(), t.nodes.size());
        // Consecutive elements are influence arcs; the final hop (if
        // any) is a trading arc.
        for (size_t i = 1; i < t.nodes.size(); ++i) {
          bool found = false;
          for (ArcId id : sub.graph.OutArcs(t.nodes[i - 1])) {
            const Arc& arc = sub.graph.arc(id);
            if (arc.dst == t.nodes[i] && IsInfluenceArc(arc)) found = true;
          }
          EXPECT_TRUE(found);
        }
        if (t.has_trade()) {
          const Arc& arc = sub.graph.arc(t.trade_arc);
          EXPECT_TRUE(IsTradingArc(arc));
          EXPECT_EQ(arc.src, t.seller());
          EXPECT_EQ(arc.dst, t.trade_dst);
        }
      }
    }
  }
}

TEST(PatternTreeTest, TreeLeavesAgreeWithTrailCount) {
  for (uint64_t seed = 40; seed < 55; ++seed) {
    Tpiin net = RandomTpiin(seed);
    for (const SubTpiin& sub : SegmentTpiin(net)) {
      auto gen = GeneratePatternBase(sub);
      ASSERT_TRUE(gen.ok());
      EXPECT_EQ(gen->base.size(), gen->num_trails);
      // Every trade trail corresponds to one trading tree leaf.
      size_t trading_leaves = 0;
      for (const auto& node : gen->tree.nodes) {
        trading_leaves += node.via_trading_arc ? 1 : 0;
      }
      size_t trade_trails = 0;
      for (const auto& t : gen->base) trade_trails += t.has_trade();
      EXPECT_EQ(trading_leaves, trade_trails);
    }
  }
}

TEST(PatternTreeTest, PathToReconstructsTrailPrefixes) {
  Tpiin net = DiamondNet();
  std::vector<SubTpiin> subs = SingleSub(net);
  auto gen = GeneratePatternBase(subs[0]);
  ASSERT_TRUE(gen.ok());
  const PatternsTree& tree = gen->tree;
  ASSERT_FALSE(tree.roots.empty());
  for (int32_t i = 0; i < static_cast<int32_t>(tree.nodes.size()); ++i) {
    std::vector<NodeId> path = tree.PathTo(i);
    EXPECT_EQ(path.back(), tree.nodes[i].graph_node);
    EXPECT_EQ(path.front(), tree.nodes[tree.roots[0]].graph_node);
  }
}

TEST(PatternTreeTest, MaxTrailsTruncates) {
  Tpiin net = DiamondNet();
  std::vector<SubTpiin> subs = SingleSub(net);
  PatternGenOptions options;
  options.max_trails = 1;
  auto gen = GeneratePatternBase(subs[0], options);
  ASSERT_TRUE(gen.ok());
  EXPECT_TRUE(gen->truncated);
  EXPECT_EQ(gen->base.size(), 1u);
}

TEST(PatternTreeTest, MaxTrailLengthTruncates) {
  Tpiin net = DiamondNet();
  std::vector<SubTpiin> subs = SingleSub(net);
  PatternGenOptions options;
  options.max_trail_length = 2;
  auto gen = GeneratePatternBase(subs[0], options);
  ASSERT_TRUE(gen.ok());
  EXPECT_TRUE(gen->truncated);
  for (const auto& t : gen->base) EXPECT_LE(t.nodes.size(), 2u);
}

TEST(PatternTreeTest, EmitTrailsOffStillCounts) {
  Tpiin net = DiamondNet();
  std::vector<SubTpiin> subs = SingleSub(net);
  PatternGenOptions options;
  options.emit_trails = false;
  auto gen = GeneratePatternBase(subs[0], options);
  ASSERT_TRUE(gen.ok());
  EXPECT_TRUE(gen->base.empty());
  EXPECT_EQ(gen->num_trails, 2u);
  EXPECT_FALSE(gen->tree.nodes.empty());
}

TEST(PatternTreeTest, CyclicInfluenceRejected) {
  // Hand-built SubTpiin with an influence cycle (invalid input).
  Tpiin net = DiamondNet();  // Parent only for labels.
  SubTpiin sub;
  sub.parent = &net;
  sub.graph.AddNodes(2);
  sub.global_of_local = {1, 2};  // Company labels C1, C2.
  sub.graph.AddArc(0, 1, kArcInfluence);
  sub.graph.AddArc(1, 0, kArcInfluence);
  sub.num_influence_arcs = 2;
  sub.global_arc_of_local = {0, 1};
  auto gen = GeneratePatternBase(sub);
  EXPECT_TRUE(gen.status().IsFailedPrecondition());
}

TEST(ListDTest, SortsByIndegreeThenOutdegree) {
  Tpiin net = DiamondNet();
  std::vector<SubTpiin> subs = SingleSub(net);
  std::vector<ListDEntry> list = ComputeListD(subs[0]);
  for (size_t i = 1; i < list.size(); ++i) {
    bool ordered =
        list[i - 1].in_degree < list[i].in_degree ||
        (list[i - 1].in_degree == list[i].in_degree &&
         list[i - 1].out_degree >= list[i].out_degree);
    EXPECT_TRUE(ordered) << "position " << i;
  }
}

}  // namespace
}  // namespace tpiin

// End-to-end validation of the mining pipeline against the paper's worked
// example (Figs. 7-10): the contracted TPIIN of Fig. 8 must yield one
// subTPIIN, the 15-trail component pattern base of Fig. 10, and exactly
// the three suspicious groups named in §4.3.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "core/matcher.h"
#include "core/pattern_tree.h"
#include "core/subtpiin.h"
#include "datagen/worked_example.h"

namespace tpiin {
namespace {

class WorkedExampleTest : public ::testing::Test {
 protected:
  WorkedExampleTest() : net_(BuildWorkedExampleTpiin()) {}

  NodeId NodeByLabel(const std::string& label) const {
    for (NodeId v = 0; v < net_.NumNodes(); ++v) {
      if (net_.Label(v) == label) return v;
    }
    ADD_FAILURE() << "no node labeled " << label;
    return kInvalidNode;
  }

  Tpiin net_;
};

TEST_F(WorkedExampleTest, NetworkShapeMatchesFig8) {
  EXPECT_EQ(net_.NumNodes(), 15u);  // 7 person (syndicate) + 8 companies.
  EXPECT_EQ(net_.num_influence_arcs(), 14u);
  EXPECT_EQ(net_.num_trading_arcs(), 5u);
}

TEST_F(WorkedExampleTest, SegmentationYieldsSingleSubTpiin) {
  SegmentStats stats;
  std::vector<SubTpiin> subs = SegmentTpiin(net_, {}, &stats);
  ASSERT_EQ(subs.size(), 1u);
  EXPECT_EQ(stats.num_components, 1u);
  EXPECT_EQ(stats.trading_arcs_internal, 5u);
  EXPECT_EQ(stats.trading_arcs_cross, 0u);
  EXPECT_EQ(subs[0].graph.NumNodes(), 15u);
  EXPECT_EQ(subs[0].graph.NumArcs(), 19u);
}

TEST_F(WorkedExampleTest, PatternBaseMatchesFig10) {
  std::vector<SubTpiin> subs = SegmentTpiin(net_);
  ASSERT_EQ(subs.size(), 1u);
  auto gen = GeneratePatternBase(subs[0]);
  ASSERT_TRUE(gen.ok()) << gen.status().ToString();
  const PatternBase& base = gen->base;

  // Fig. 10 lists exactly 15 suspicious relationship trails.
  EXPECT_EQ(base.size(), 15u);

  std::set<std::string> formatted;
  for (const auto& trail : base) formatted.insert(trail.Format(subs[0]));

  const char* kExpected[] = {
      "L1, C2, C5 -> C6", "L1, C2, C5 -> C7", "L1, C1, C3 -> C5",
      "L1, C4",           "L3, C5 -> C7",     "L3, C5 -> C6",
      "L2, C3 -> C5",     "B1, C5 -> C6",     "B1, C5 -> C7",
      "B1, C6",           "L4, C6",           "L4, C7 -> C8",
      "B2, C7 -> C8",     "B2, C8 -> C4",     "L5, C8 -> C4",
  };
  for (const char* expected : kExpected) {
    EXPECT_TRUE(formatted.count(expected))
        << "missing trail: " << expected;
  }
  EXPECT_EQ(formatted.size(), 15u);
}

TEST_F(WorkedExampleTest, ListDOrdersRootsFirst) {
  std::vector<SubTpiin> subs = SegmentTpiin(net_);
  std::vector<ListDEntry> list = ComputeListD(subs[0]);
  ASSERT_EQ(list.size(), 15u);
  // The seven person nodes have indegree zero and must come first.
  for (size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(list[i].in_degree, 0u) << "position " << i;
  }
  // Among the indegree-0 nodes, higher outdegree sorts earlier; L1 has
  // outdegree 3, more than any other person node.
  EXPECT_EQ(subs[0].Label(list[0].node), "L1");
}

TEST_F(WorkedExampleTest, PatternsTreeSharesRootPrefixes) {
  std::vector<SubTpiin> subs = SegmentTpiin(net_);
  PatternGenOptions options;
  options.build_tree = true;
  auto gen = GeneratePatternBase(subs[0], options);
  ASSERT_TRUE(gen.ok());
  const PatternsTree& tree = gen->tree;
  // One tree root per indegree-zero node.
  EXPECT_EQ(tree.roots.size(), 7u);
  // The rendering mentions every node label at least once.
  std::string rendering = tree.ToString(subs[0]);
  for (const char* label : {"L1", "L2", "L3", "L4", "L5", "B1", "B2"}) {
    EXPECT_NE(rendering.find(label), std::string::npos) << label;
  }
}

TEST_F(WorkedExampleTest, DetectsExactlyThePapersThreeGroups) {
  auto result = DetectSuspiciousGroups(net_);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // §4.3: suspicious groups (L1, C1, C2, C3, C5), (B1, C5, C6),
  // (B2, C7, C8) — all simple, no circle or intra-SCC findings.
  EXPECT_EQ(result->num_simple, 3u);
  EXPECT_EQ(result->num_complex, 0u);
  EXPECT_EQ(result->num_cycle_groups, 0u);
  EXPECT_TRUE(result->intra_syndicate.empty());
  ASSERT_EQ(result->groups.size(), 3u);

  std::set<std::vector<std::string>> member_sets;
  for (const SuspiciousGroup& group : result->groups) {
    std::vector<std::string> labels;
    for (NodeId v : group.members) {
      labels.push_back(std::string(net_.Label(v)));
    }
    std::sort(labels.begin(), labels.end());
    member_sets.insert(labels);
    EXPECT_TRUE(group.is_simple) << group.Format(net_);
  }
  EXPECT_TRUE(member_sets.count({"B1", "C5", "C6"}));
  EXPECT_TRUE(member_sets.count({"B2", "C7", "C8"}));
  EXPECT_TRUE(member_sets.count({"C1", "C2", "C3", "C5", "L1"}));
}

TEST_F(WorkedExampleTest, SuspiciousTradesAreTheThreeIats) {
  auto result = DetectSuspiciousGroups(net_);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->suspicious_trades.size(), 3u);

  std::set<std::pair<std::string, std::string>> trades;
  for (const auto& [seller, buyer] : result->suspicious_trades) {
    trades.emplace(net_.Label(seller), net_.Label(buyer));
  }
  EXPECT_TRUE(trades.count({"C3", "C5"}));
  EXPECT_TRUE(trades.count({"C5", "C6"}));
  EXPECT_TRUE(trades.count({"C7", "C8"}));
  // C5 -> C7 and C8 -> C4 are not suspicious: no common antecedent.
  EXPECT_FALSE(trades.count({"C5", "C7"}));
  EXPECT_FALSE(trades.count({"C8", "C4"}));
}

TEST_F(WorkedExampleTest, GroupAntecedentsMatchThePaper) {
  auto result = DetectSuspiciousGroups(net_);
  ASSERT_TRUE(result.ok());
  std::set<std::string> antecedents;
  for (const SuspiciousGroup& group : result->groups) {
    antecedents.insert(std::string(net_.Label(group.antecedent)));
  }
  EXPECT_EQ(antecedents, (std::set<std::string>{"L1", "B1", "B2"}));
}

}  // namespace
}  // namespace tpiin

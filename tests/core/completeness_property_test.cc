// The paper's completeness argument (Appendix A) as executable
// properties: on randomized TPIINs the proposed Algorithm 1 pipeline is
// (a) identical, group for group, to the root-anchored global-traversal
// baseline; (b) identical, arc for arc, to the all-anchors baseline —
// the "accuracy 100%" columns of Table 1; and (c) sound: every reported
// group satisfies Definition 2/3 structurally.

#include <set>

#include <gtest/gtest.h>

#include "core/baseline.h"
#include "core/detector.h"
#include "tests/core/test_util.h"

namespace tpiin {
namespace {

// Structural soundness of one group against the TPIIN (Definition 2/3).
void VerifyGroup(const Tpiin& net, const SuspiciousGroup& group) {
  const Digraph& g = net.graph();
  auto has_arc = [&](NodeId src, NodeId dst, bool trading) {
    for (ArcId id : g.OutArcs(src)) {
      const Arc& arc = g.arc(id);
      if (arc.dst == dst && IsTradingArc(arc) == trading) return true;
    }
    return false;
  };

  // Component pattern 1: influence hops then one trading arc.
  for (size_t i = 1; i < group.trade_trail.size(); ++i) {
    EXPECT_TRUE(has_arc(group.trade_trail[i - 1], group.trade_trail[i],
                        /*trading=*/false))
        << group.Format(net);
  }
  EXPECT_EQ(group.trade_seller, group.trade_trail.back());
  EXPECT_TRUE(has_arc(group.trade_seller, group.trade_buyer,
                      /*trading=*/true))
      << group.Format(net);

  // Component pattern 2: influence-only trail to the buyer.
  for (size_t i = 1; i < group.partner_trail.size(); ++i) {
    EXPECT_TRUE(has_arc(group.partner_trail[i - 1],
                        group.partner_trail[i], /*trading=*/false));
  }
  if (!group.from_cycle) {
    EXPECT_EQ(group.partner_trail.front(), group.antecedent);
    EXPECT_EQ(group.partner_trail.back(), group.trade_buyer);
    EXPECT_EQ(group.trade_trail.front(), group.antecedent);
  } else {
    EXPECT_EQ(group.trade_trail.front(), group.trade_buyer);
    EXPECT_EQ(group.antecedent, group.trade_buyer);
  }

  // Definition 3 classification: shared nodes besides start and end.
  if (!group.from_cycle) {
    std::set<NodeId> trail1(group.trade_trail.begin(),
                            group.trade_trail.end());
    trail1.insert(group.trade_buyer);
    bool shares_interior = false;
    for (size_t i = 1; i + 1 < group.partner_trail.size(); ++i) {
      if (trail1.count(group.partner_trail[i])) shares_interior = true;
    }
    EXPECT_EQ(group.is_simple, !shares_interior) << group.Format(net);
  } else {
    EXPECT_TRUE(group.is_simple);
  }
}

class CompletenessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CompletenessTest, ProposedEqualsRootAnchoredBaseline) {
  Tpiin net = RandomTpiin(GetParam(), /*max_persons=*/8,
                          /*max_companies=*/14);
  Result<DetectionResult> proposed = DetectSuspiciousGroups(net);
  ASSERT_TRUE(proposed.ok());
  BaselineResult baseline = DetectBaseline(net);

  EXPECT_EQ(proposed->num_simple, baseline.num_simple);
  EXPECT_EQ(proposed->num_complex, baseline.num_complex);
  EXPECT_EQ(PairwiseKeys(proposed->groups), PairwiseKeys(baseline.groups));
  EXPECT_EQ(proposed->suspicious_trades, baseline.suspicious_trades);
}

TEST_P(CompletenessTest, ArcSetEqualsAllAnchorsBaseline) {
  Tpiin net = RandomTpiin(GetParam() + 1000);
  Result<DetectionResult> proposed = DetectSuspiciousGroups(net);
  ASSERT_TRUE(proposed.ok());
  BaselineOptions options;
  options.anchor = BaselineAnchor::kAllNodes;
  options.collect_groups = false;
  BaselineResult baseline = DetectBaseline(net, options);
  EXPECT_EQ(proposed->suspicious_trades, baseline.suspicious_trades);
}

TEST_P(CompletenessTest, NaivePairingAgreesWithIndexedBaseline) {
  Tpiin net = RandomTpiin(GetParam() + 2000);
  BaselineResult indexed = DetectBaseline(net);
  BaselineOptions naive_options;
  naive_options.naive_pairing = true;
  BaselineResult naive = DetectBaseline(net, naive_options);
  EXPECT_EQ(indexed.num_simple, naive.num_simple);
  EXPECT_EQ(indexed.num_complex, naive.num_complex);
  EXPECT_EQ(indexed.suspicious_trades, naive.suspicious_trades);
  EXPECT_EQ(PairwiseKeys(indexed.groups), PairwiseKeys(naive.groups));
}

TEST_P(CompletenessTest, EveryReportedGroupIsStructurallySound) {
  Tpiin net = RandomTpiin(GetParam() + 3000);
  Result<DetectionResult> proposed = DetectSuspiciousGroups(net);
  ASSERT_TRUE(proposed.ok());
  for (const SuspiciousGroup& group : proposed->groups) {
    VerifyGroup(net, group);
  }
}

TEST_P(CompletenessTest, EverySuspiciousArcHasAGroupAndViceVersa) {
  Tpiin net = RandomTpiin(GetParam() + 4000);
  Result<DetectionResult> proposed = DetectSuspiciousGroups(net);
  ASSERT_TRUE(proposed.ok());
  std::set<std::pair<NodeId, NodeId>> from_groups;
  for (const SuspiciousGroup& group : proposed->groups) {
    from_groups.emplace(group.trade_seller, group.trade_buyer);
  }
  std::set<std::pair<NodeId, NodeId>> reported(
      proposed->suspicious_trades.begin(),
      proposed->suspicious_trades.end());
  EXPECT_EQ(from_groups, reported);
}

INSTANTIATE_TEST_SUITE_P(RandomNets, CompletenessTest,
                         ::testing::Range<uint64_t>(0, 60));

}  // namespace
}  // namespace tpiin

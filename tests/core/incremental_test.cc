#include "core/incremental.h"

#include <set>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "datagen/worked_example.h"
#include "tests/core/test_util.h"

namespace tpiin {
namespace {

TEST(IncrementalTest, WorkedExampleArcsMatchPaper) {
  Tpiin net = BuildWorkedExampleTpiin();
  IncrementalScreener screener(net);

  auto node = [&](const char* label) {
    for (NodeId v = 0; v < net.NumNodes(); ++v) {
      if (net.Label(v) == label) return v;
    }
    ADD_FAILURE() << label;
    return kInvalidNode;
  };

  // The three IATs of §4.3 are suspicious...
  EXPECT_TRUE(screener.IsSuspicious(node("C3"), node("C5")));
  EXPECT_TRUE(screener.IsSuspicious(node("C5"), node("C6")));
  EXPECT_TRUE(screener.IsSuspicious(node("C7"), node("C8")));
  // ... and the other two trading arcs are not.
  EXPECT_FALSE(screener.IsSuspicious(node("C5"), node("C7")));
  EXPECT_FALSE(screener.IsSuspicious(node("C8"), node("C4")));
  // Suspicion of a relationship is direction-independent (a common
  // antecedent serves both directions).
  EXPECT_TRUE(screener.IsSuspicious(node("C5"), node("C3")));
}

TEST(IncrementalTest, WitnessIsARealCommonAntecedent) {
  Tpiin net = BuildWorkedExampleTpiin();
  IncrementalScreener screener(net);
  for (NodeId u = 0; u < net.NumNodes(); ++u) {
    for (NodeId v = 0; v < net.NumNodes(); ++v) {
      auto witness = screener.CommonAntecedent(u, v);
      if (!witness.has_value()) continue;
      const std::vector<NodeId>& au = screener.AncestorsOrSelf(u);
      const std::vector<NodeId>& av = screener.AncestorsOrSelf(v);
      EXPECT_TRUE(std::binary_search(au.begin(), au.end(), *witness));
      EXPECT_TRUE(std::binary_search(av.begin(), av.end(), *witness));
    }
  }
}

TEST(IncrementalTest, AncestorSetsAreSortedUniqueAndReflexive) {
  Tpiin net = BuildWorkedExampleTpiin();
  IncrementalScreener screener(net);
  for (NodeId v = 0; v < net.NumNodes(); ++v) {
    const std::vector<NodeId>& anc = screener.AncestorsOrSelf(v);
    EXPECT_TRUE(std::is_sorted(anc.begin(), anc.end()));
    EXPECT_EQ(std::adjacent_find(anc.begin(), anc.end()), anc.end());
    EXPECT_TRUE(std::binary_search(anc.begin(), anc.end(), v));
  }
  EXPECT_GT(screener.TotalAncestorEntries(), net.NumNodes());
}

// Arc-level agreement with Algorithm 1 on random TPIINs: a trading arc
// of the network is suspicious per the detector iff the screener says so
// for its endpoints.
class IncrementalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalPropertyTest, AgreesWithDetectorArcSet) {
  Tpiin net = RandomTpiin(GetParam(), /*max_persons=*/8,
                          /*max_companies=*/14);
  DetectorOptions options;
  options.match.collect_groups = false;
  auto detection = DetectSuspiciousGroups(net, options);
  ASSERT_TRUE(detection.ok());
  std::set<std::pair<NodeId, NodeId>> suspicious(
      detection->suspicious_trades.begin(),
      detection->suspicious_trades.end());

  IncrementalScreener screener(net);
  for (ArcId id = net.num_influence_arcs(); id < net.graph().NumArcs();
       ++id) {
    const Arc& arc = net.graph().arc(id);
    EXPECT_EQ(screener.IsSuspicious(arc.src, arc.dst),
              suspicious.count({arc.src, arc.dst}) > 0)
        << "arc " << net.Label(arc.src) << " -> " << net.Label(arc.dst);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomNets, IncrementalPropertyTest,
                         ::testing::Range<uint64_t>(0, 40));

TEST(IncrementalTest, ScreensArcsNotInTheNetwork) {
  // The point of the screener: classify relationships that do not exist
  // yet. P influences C1 and C2; no trade between them is present.
  TpiinBuilder builder;
  NodeId p = builder.AddPersonNode("P");
  NodeId c1 = builder.AddCompanyNode("C1");
  NodeId c2 = builder.AddCompanyNode("C2");
  NodeId c3 = builder.AddCompanyNode("C3");
  NodeId q = builder.AddPersonNode("Q");
  builder.AddInfluenceArc(p, c1);
  builder.AddInfluenceArc(p, c2);
  builder.AddInfluenceArc(q, c3);
  auto net = builder.Build();
  ASSERT_TRUE(net.ok());
  IncrementalScreener screener(*net);
  EXPECT_TRUE(screener.IsSuspicious(c1, c2));
  EXPECT_FALSE(screener.IsSuspicious(c1, c3));
  EXPECT_TRUE(screener.IsSuspicious(c1, c1));  // Self = intra-syndicate.
}

}  // namespace
}  // namespace tpiin

// Cross-cutting invariants that don't belong to a single unit: root
// ordering must not change results, detector options must compose, and
// the paper's degenerate patterns (Fig. 3 variants) must all resolve.

#include <set>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "core/baseline.h"
#include "core/detector.h"
#include "core/pattern_tree.h"
#include "core/scoring.h"
#include "tests/core/test_util.h"

namespace tpiin {
namespace {

TEST(InvariantsTest, RootOrderingDoesNotChangeMatches) {
  for (uint64_t seed = 0; seed < 15; ++seed) {
    Tpiin net = RandomTpiin(seed);
    for (const SubTpiin& sub : SegmentTpiin(net)) {
      PatternGenOptions list_d;
      PatternGenOptions by_id;
      by_id.order_roots_by_list_d = false;
      auto a = GeneratePatternBase(sub, list_d);
      auto b = GeneratePatternBase(sub, by_id);
      ASSERT_TRUE(a.ok() && b.ok());
      // The bases are permutations of each other...
      EXPECT_EQ(a->base.size(), b->base.size());
      std::multiset<std::string> fa;
      std::multiset<std::string> fb;
      for (const auto& t : a->base) fa.insert(t.Format(sub));
      for (const auto& t : b->base) fb.insert(t.Format(sub));
      EXPECT_EQ(fa, fb);
      // ... and matching them yields identical counts and arcs.
      MatchResult ma = MatchPatternsTree(sub, a->tree);
      MatchResult mb = MatchPatternsTree(sub, b->tree);
      EXPECT_EQ(ma.num_simple, mb.num_simple);
      EXPECT_EQ(ma.num_complex, mb.num_complex);
      EXPECT_EQ(ma.num_cycle_groups, mb.num_cycle_groups);
      EXPECT_EQ(ma.suspicious_trading_arcs, mb.suspicious_trading_arcs);
    }
  }
}

TEST(InvariantsTest, DisablingCycleDetectionOnlyDropsCycleGroups) {
  for (uint64_t seed = 20; seed < 35; ++seed) {
    Tpiin net = RandomTpiin(seed);
    DetectorOptions with_cycles;
    DetectorOptions without_cycles;
    without_cycles.match.detect_cycles = false;
    auto a = DetectSuspiciousGroups(net, with_cycles);
    auto b = DetectSuspiciousGroups(net, without_cycles);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->num_simple, b->num_simple);
    EXPECT_EQ(a->num_complex, b->num_complex);
    EXPECT_EQ(b->num_cycle_groups, 0u);
    // Pairwise matches subsume the cycle arcs (the unified-rule
    // guarantee), so the suspicious arc set is unchanged.
    EXPECT_EQ(a->suspicious_trades, b->suspicious_trades);
  }
}

// The four graph-based pattern shapes of Fig. 3: triangle (same
// investor), quadrilateral, pentagon and hexagon (longer proof chains)
// must each produce exactly one suspicious arc.
TEST(InvariantsTest, Fig3PatternShapesAllResolve) {
  struct Shape {
    const char* name;
    uint32_t chain_left;   // Influence hops antecedent -> seller.
    uint32_t chain_right;  // Influence hops antecedent -> buyer.
  };
  const Shape shapes[] = {
      {"triangle", 1, 1},      // 3 nodes in the cycle.
      {"quadrilateral", 2, 1}, // 4.
      {"pentagon", 2, 2},      // 5.
      {"hexagon", 3, 2},       // 6.
  };
  for (const Shape& shape : shapes) {
    TpiinBuilder builder;
    NodeId antecedent = builder.AddPersonNode("A");
    NodeId prev = antecedent;
    NodeId seller = kInvalidNode;
    for (uint32_t i = 0; i < shape.chain_left; ++i) {
      seller = builder.AddCompanyNode(StringPrintf("S%u", i));
      builder.AddInfluenceArc(prev, seller);
      prev = seller;
    }
    prev = antecedent;
    NodeId buyer = kInvalidNode;
    for (uint32_t i = 0; i < shape.chain_right; ++i) {
      buyer = builder.AddCompanyNode(StringPrintf("B%u", i));
      builder.AddInfluenceArc(prev, buyer);
      prev = buyer;
    }
    builder.AddTradingArc(seller, buyer);
    auto net = builder.Build();
    ASSERT_TRUE(net.ok()) << shape.name;
    auto result = DetectSuspiciousGroups(*net);
    ASSERT_TRUE(result.ok()) << shape.name;
    EXPECT_EQ(result->suspicious_trades.size(), 1u) << shape.name;
    EXPECT_EQ(result->num_simple + result->num_complex, 1u) << shape.name;
    // Longer disjoint chains stay simple groups.
    EXPECT_EQ(result->num_simple, 1u) << shape.name;
  }
}

TEST(InvariantsTest, ScoringCoversEverySuspiciousTrade) {
  for (uint64_t seed = 40; seed < 50; ++seed) {
    Tpiin net = RandomTpiin(seed);
    auto detection = DetectSuspiciousGroups(net);
    ASSERT_TRUE(detection.ok());
    ScoringResult scoring = ScoreDetection(net, *detection);
    std::set<std::pair<NodeId, NodeId>> scored;
    for (const ScoredTrade& trade : scoring.ranked_trades) {
      scored.emplace(trade.seller, trade.buyer);
    }
    for (const auto& pair : detection->suspicious_trades) {
      EXPECT_TRUE(scored.count(pair));
    }
  }
}

TEST(InvariantsTest, BaselineNaiveAndIndexedAgreeOnRandomNets) {
  for (uint64_t seed = 60; seed < 70; ++seed) {
    Tpiin net = RandomTpiin(seed);
    BaselineOptions naive;
    naive.naive_pairing = true;
    naive.anchor = BaselineAnchor::kAllNodes;
    BaselineOptions indexed;
    indexed.anchor = BaselineAnchor::kAllNodes;
    BaselineResult a = DetectBaseline(net, naive);
    BaselineResult b = DetectBaseline(net, indexed);
    EXPECT_EQ(a.num_simple, b.num_simple);
    EXPECT_EQ(a.num_complex, b.num_complex);
    EXPECT_EQ(a.suspicious_trades, b.suspicious_trades);
  }
}

}  // namespace
}  // namespace tpiin

// The peak-RSS gauge backs the out-of-core memory claims (DESIGN.md
// §5g): it must report a plausible high-water mark, never decrease, and
// land in the metrics registry when sampled at stage boundaries.

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/rss.h"

namespace tpiin {
namespace {

TEST(RssTest, PeakIsPositiveAndMonotone) {
  const int64_t before = PeakRssBytes();
  ASSERT_GT(before, 0) << "platform cannot report ru_maxrss";
  // A real allocation large enough to move the high-water mark on any
  // page size; touched so it is actually resident.
  std::vector<char> block(64 << 20);
  std::memset(block.data(), 0x5a, block.size());
  const int64_t after = PeakRssBytes();
  EXPECT_GE(after, before);
  block.clear();
  block.shrink_to_fit();
  // Monotone: releasing memory must not lower the reported peak.
  EXPECT_GE(PeakRssBytes(), after);
}

TEST(RssTest, CurrentIsPlausible) {
  const int64_t current = CurrentRssBytes();
  // procfs may be absent on exotic platforms (the function returns 0);
  // where present, current must not exceed the lifetime peak.
  if (current > 0) {
    EXPECT_LE(current, PeakRssBytes());
  }
}

TEST(RssTest, SampleSetsGauges) {
  const int64_t peak = SampleRssGauges();
  EXPECT_GT(peak, 0);
  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const MetricsSnapshot::Entry* entry =
      snapshot.Find("process.peak_rss_bytes");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->kind, MetricsSnapshot::Kind::kGauge);
  EXPECT_GE(entry->gauge, peak);
}

}  // namespace
}  // namespace tpiin

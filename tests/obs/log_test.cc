// JsonLogSink and the structured-log formatters: RFC 3339 timestamps,
// NDJSON event shape, the TPIIN_LOG backend bridge, and SIGHUP-style
// reopen (rename + RequestReopen loses no events).

#include "obs/log.h"

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/logging.h"

namespace tpiin {
namespace {

std::string ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    out.push_back(text.substr(pos, end - pos));
    pos = end + 1;
  }
  return out;
}

class LogSinkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("tpiin_log_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    SetLogBackend(nullptr);  // Never leave a dangling backend behind.
    std::filesystem::remove_all(dir_);
  }

  std::string dir_;
};

TEST(LogFormatTest, TimestampEpoch) {
  EXPECT_EQ(FormatLogTimestamp(0), "1970-01-01T00:00:00.000000Z");
}

TEST(LogFormatTest, TimestampKnownInstant) {
  // 2000-01-01T00:00:00Z is 946684800 s after the epoch.
  EXPECT_EQ(FormatLogTimestamp(946684800000000 + 123456),
            "2000-01-01T00:00:00.123456Z");
  EXPECT_EQ(FormatLogTimestamp(946684800000000 + 1),
            "2000-01-01T00:00:00.000001Z");
}

TEST(LogFormatTest, UnixMicrosNowIsCurrent) {
  // Coarse sanity: after 2020-01-01 and strictly increasing-ish.
  const int64_t now = UnixMicrosNow();
  EXPECT_GT(now, int64_t{1577836800} * 1000000);
  EXPECT_GE(UnixMicrosNow(), now);
}

TEST(LogFormatTest, EventShapeIsFlatNdjson) {
  const std::string line = FormatLogEvent(
      LogLevel::kInfo, "serve", "request",
      {LogField("conn", uint64_t{3}), LogField("req", "c3-r7"),
       LogField("ok", true), LogField("gauge", int64_t{-4})},
      946684800000000);
  EXPECT_EQ(line,
            R"({"ts":"2000-01-01T00:00:00.000000Z","level":"info",)"
            R"("component":"serve","event":"request",)"
            R"("conn":3,"req":"c3-r7","ok":true,"gauge":-4})");
}

TEST(LogFormatTest, EventEscapesStrings) {
  const std::string line = FormatLogEvent(
      LogLevel::kError, "a\"b", "e\nv",
      {LogField("msg", std::string("quote\" slash\\ nl\n"))}, 0);
  EXPECT_NE(line.find(R"("component":"a\"b")"), std::string::npos) << line;
  EXPECT_NE(line.find(R"("event":"e\nv")"), std::string::npos) << line;
  EXPECT_NE(line.find(R"("msg":"quote\" slash\\ nl\n")"), std::string::npos)
      << line;
  EXPECT_EQ(line.find('\n'), std::string::npos)
      << "an event must be exactly one line";
}

TEST(LogFormatTest, LevelTokens) {
  EXPECT_STREQ(LogLevelToken(LogLevel::kDebug), "debug");
  EXPECT_STREQ(LogLevelToken(LogLevel::kInfo), "info");
  EXPECT_STREQ(LogLevelToken(LogLevel::kWarning), "warn");
  EXPECT_STREQ(LogLevelToken(LogLevel::kError), "error");
}

TEST_F(LogSinkTest, WritesOneLinePerEvent) {
  const std::string path = dir_ + "/events.ndjson";
  std::string error;
  std::unique_ptr<JsonLogSink> sink = JsonLogSink::Open(path, &error);
  ASSERT_NE(sink, nullptr) << error;
  EXPECT_EQ(sink->path(), path);

  sink->Event(LogLevel::kInfo, "serve", "request",
              {LogField("req", "c1-r1"), LogField("bytes", uint64_t{42})});
  sink->Event(LogLevel::kWarning, "serve", "refused",
              {LogField("req", "c2-r0")});
  EXPECT_TRUE(sink->ok());
  EXPECT_EQ(sink->lines_written(), 2u);

  const std::vector<std::string> lines = Lines(ReadFileToString(path));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"event\":\"request\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"req\":\"c1-r1\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"bytes\":42"), std::string::npos);
  EXPECT_NE(lines[1].find("\"level\":\"warn\""), std::string::npos);
  for (const std::string& line : lines) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST_F(LogSinkTest, AppendsAcrossSinks) {
  // O_APPEND: a restarted process keeps the log, never truncates it.
  const std::string path = dir_ + "/events.ndjson";
  std::string error;
  {
    std::unique_ptr<JsonLogSink> sink = JsonLogSink::Open(path, &error);
    ASSERT_NE(sink, nullptr) << error;
    sink->Event(LogLevel::kInfo, "t", "first", {});
  }
  {
    std::unique_ptr<JsonLogSink> sink = JsonLogSink::Open(path, &error);
    ASSERT_NE(sink, nullptr) << error;
    sink->Event(LogLevel::kInfo, "t", "second", {});
  }
  EXPECT_EQ(Lines(ReadFileToString(path)).size(), 2u);
}

TEST_F(LogSinkTest, OpenFailureReportsError) {
  std::string error;
  std::unique_ptr<JsonLogSink> sink =
      JsonLogSink::Open(dir_ + "/no/such/dir/events.ndjson", &error);
  EXPECT_EQ(sink, nullptr);
  EXPECT_FALSE(error.empty());
}

TEST_F(LogSinkTest, StderrSinkAcceptsEvents) {
  for (const std::string& path : {std::string(""), std::string("-")}) {
    std::string error;
    std::unique_ptr<JsonLogSink> sink = JsonLogSink::Open(path, &error);
    ASSERT_NE(sink, nullptr) << error;
    testing::internal::CaptureStderr();
    sink->Event(LogLevel::kInfo, "t", "e", {LogField("k", "v")});
    sink->RequestReopen();  // No-op for stderr; must not close fd 2.
    sink->Event(LogLevel::kInfo, "t", "e2", {});
    const std::string captured = testing::internal::GetCapturedStderr();
    EXPECT_EQ(sink->lines_written(), 2u);
    EXPECT_TRUE(sink->ok());
    EXPECT_NE(captured.find("\"event\":\"e\""), std::string::npos);
    EXPECT_NE(captured.find("\"event\":\"e2\""), std::string::npos);
  }
}

TEST_F(LogSinkTest, ReopenFollowsRotation) {
  // The external rotation idiom: rename the live file, then ask the
  // sink to reopen. No event may be lost on either side of the switch.
  const std::string path = dir_ + "/events.ndjson";
  std::string error;
  std::unique_ptr<JsonLogSink> sink = JsonLogSink::Open(path, &error);
  ASSERT_NE(sink, nullptr) << error;

  sink->Event(LogLevel::kInfo, "t", "before", {});
  std::filesystem::rename(path, path + ".1");
  sink->Event(LogLevel::kInfo, "t", "still-old", {});
  sink->RequestReopen();
  sink->Event(LogLevel::kInfo, "t", "after", {});

  const std::string rotated = ReadFileToString(path + ".1");
  const std::string fresh = ReadFileToString(path);
  EXPECT_NE(rotated.find("\"event\":\"before\""), std::string::npos);
  EXPECT_NE(rotated.find("\"event\":\"still-old\""), std::string::npos)
      << "events before the reopen request stay on the old fd";
  EXPECT_NE(fresh.find("\"event\":\"after\""), std::string::npos);
  EXPECT_EQ(fresh.find("\"event\":\"before\""), std::string::npos);
  EXPECT_EQ(sink->lines_written(), 3u);
  EXPECT_TRUE(sink->ok());
}

TEST_F(LogSinkTest, RequestReopenAllHitsEveryLiveSink) {
  const std::string path_a = dir_ + "/a.ndjson";
  const std::string path_b = dir_ + "/b.ndjson";
  std::string error;
  std::unique_ptr<JsonLogSink> a = JsonLogSink::Open(path_a, &error);
  std::unique_ptr<JsonLogSink> b = JsonLogSink::Open(path_b, &error);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  a->Event(LogLevel::kInfo, "t", "a1", {});
  b->Event(LogLevel::kInfo, "t", "b1", {});
  std::filesystem::rename(path_a, path_a + ".1");
  std::filesystem::rename(path_b, path_b + ".1");
  JsonLogSink::RequestReopenAll();
  a->Event(LogLevel::kInfo, "t", "a2", {});
  b->Event(LogLevel::kInfo, "t", "b2", {});

  EXPECT_NE(ReadFileToString(path_a).find("\"event\":\"a2\""),
            std::string::npos);
  EXPECT_NE(ReadFileToString(path_b).find("\"event\":\"b2\""),
            std::string::npos);
}

TEST_F(LogSinkTest, BackendUpgradesTpiinLogLines) {
  const std::string path = dir_ + "/log.ndjson";
  std::string error;
  std::unique_ptr<JsonLogSink> sink = JsonLogSink::Open(path, &error);
  ASSERT_NE(sink, nullptr) << error;

  SetLogBackend(sink.get());
  TPIIN_LOG(Warning) << "boom " << 42;
  SetLogBackend(nullptr);

  const std::string text = ReadFileToString(path);
  EXPECT_NE(text.find("\"level\":\"warn\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"event\":\"log\""), std::string::npos) << text;
  EXPECT_NE(text.find("\"msg\":\"boom 42\""), std::string::npos) << text;
  // Component falls back to the basename for files outside src/;
  // the call site lands under "src" as file:line.
  EXPECT_NE(text.find("\"component\":\"log_test\""), std::string::npos)
      << text;
  EXPECT_NE(text.find("\"src\":\"log_test.cc:"), std::string::npos) << text;
}

TEST_F(LogSinkTest, BackendHonorsLogLevelGate) {
  const std::string path = dir_ + "/log.ndjson";
  std::string error;
  std::unique_ptr<JsonLogSink> sink = JsonLogSink::Open(path, &error);
  ASSERT_NE(sink, nullptr) << error;

  const LogLevel old_level = GetLogLevel();
  SetLogBackend(sink.get());
  SetLogLevel(LogLevel::kError);
  TPIIN_LOG(Info) << "suppressed";
  TPIIN_LOG(Error) << "kept";
  SetLogLevel(old_level);
  SetLogBackend(nullptr);

  const std::string text = ReadFileToString(path);
  EXPECT_EQ(text.find("suppressed"), std::string::npos) << text;
  EXPECT_NE(text.find("kept"), std::string::npos) << text;
  EXPECT_EQ(sink->lines_written(), 1u);
}

}  // namespace
}  // namespace tpiin

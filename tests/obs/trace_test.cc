// TraceRecorder: concurrent span recording from pool workers, merged
// ordering, and the Chrome trace_event JSON shape (parse + nesting
// check on the golden small case).

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "obs/trace.h"

namespace tpiin {
namespace {

TEST(TraceTest, NoRecorderInstalledIsNoop) {
  ASSERT_EQ(TraceRecorder::Current(), nullptr);
  // Must not crash or record anywhere.
  TPIIN_SPAN("orphan");
}

TEST(TraceTest, RecordsNestedSpansOnOneThread) {
  TraceRecorder recorder;
  recorder.Install();
  {
    TPIIN_SPAN("outer");
    {
      TPIIN_SPAN("inner");
    }
  }
  TraceRecorder::Uninstall();
  ASSERT_EQ(recorder.NumEvents(), 2u);

  std::vector<TraceRecorder::SpanEvent> events = recorder.MergedEvents();
  ASSERT_EQ(events.size(), 2u);
  // Sorted by start time with longer spans first on ties, so the parent
  // precedes the child.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
  EXPECT_GE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us);
  EXPECT_EQ(events[0].tid, events[1].tid);
}

TEST(TraceTest, UninstallStopsRecording) {
  TraceRecorder recorder;
  recorder.Install();
  { TPIIN_SPAN("recorded"); }
  TraceRecorder::Uninstall();
  { TPIIN_SPAN("dropped"); }
  EXPECT_EQ(recorder.NumEvents(), 1u);
}

TEST(TraceTest, DestructorUninstallsItself) {
  {
    TraceRecorder recorder;
    recorder.Install();
    ASSERT_EQ(TraceRecorder::Current(), &recorder);
  }
  EXPECT_EQ(TraceRecorder::Current(), nullptr);
}

TEST(TraceTest, ConcurrentSpansFromPoolWorkers) {
  constexpr size_t kTasks = 64;
  constexpr int kSpansPerTask = 3;  // outer + two nested.
  TraceRecorder recorder;
  recorder.Install();
  ThreadPool::Global().ParallelFor(kTasks, 8, [](size_t) {
    TPIIN_SPAN("task");
    {
      TPIIN_SPAN("step_a");
    }
    {
      TPIIN_SPAN("step_b");
    }
  });
  TraceRecorder::Uninstall();

  EXPECT_EQ(recorder.NumEvents(), kTasks * kSpansPerTask);
  std::vector<TraceRecorder::SpanEvent> events = recorder.MergedEvents();
  size_t tasks = 0;
  size_t steps = 0;
  for (const TraceRecorder::SpanEvent& event : events) {
    EXPECT_GE(event.dur_us, 0);
    if (std::string(event.name) == "task") {
      ++tasks;
    } else {
      ++steps;
    }
  }
  EXPECT_EQ(tasks, kTasks);
  EXPECT_EQ(steps, 2 * kTasks);
  // Merged order is by start time.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts_us, events[i].ts_us);
  }
}

TEST(TraceTest, SecondRecorderTakesOverCleanly) {
  TraceRecorder first;
  first.Install();
  { TPIIN_SPAN("one"); }
  TraceRecorder second;
  second.Install();
  { TPIIN_SPAN("two"); }
  TraceRecorder::Uninstall();
  EXPECT_EQ(first.NumEvents(), 1u);
  EXPECT_EQ(second.NumEvents(), 1u);
}

// Minimal structural parse of the Chrome trace JSON: every event object
// carries the required keys, "X" events nest properly per thread, and
// the golden small case (outer wrapping inner) is reproduced.
TEST(TraceTest, ChromeTraceJsonParsesAndNests) {
  TraceRecorder recorder;
  recorder.Install();
  {
    TPIIN_SPAN("golden_outer");
    {
      TPIIN_SPAN("golden_inner");
    }
  }
  TraceRecorder::Uninstall();

  const std::string json = recorder.ToChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos)
      << "thread_name metadata missing";
  EXPECT_NE(json.find("\"golden_outer\""), std::string::npos);
  EXPECT_NE(json.find("\"golden_inner\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check; the format
  // has no strings containing braces here).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
  EXPECT_EQ(json.find(",\n]"), std::string::npos)
      << "trailing comma before array close";

  // Nesting: the outer "X" event must fully contain the inner one.
  std::vector<TraceRecorder::SpanEvent> events = recorder.MergedEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_LE(events[0].ts_us, events[1].ts_us);
  EXPECT_GE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us);
}

TEST(TraceTest, ThreadCpuClocksAreMonotonic) {
  const double thread_before = ThreadCpuSeconds();
  const double process_before = ProcessCpuSeconds();
  // Burn a little CPU so the clocks must advance.
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < (1u << 18); ++i) sink = sink + i;
  EXPECT_GE(ThreadCpuSeconds(), thread_before);
  EXPECT_GE(ProcessCpuSeconds(), process_before);
}

}  // namespace
}  // namespace tpiin

// Determinism gate for the observability layer (ISSUE acceptance
// criterion): fuse + detect output must be bit-identical with tracing
// enabled and disabled, at 1 and 8 threads. Spans and counters only
// read clocks and append to buffers, so nothing here may perturb the
// pipeline's scheduling-visible state.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/detector.h"
#include "core/scoring.h"
#include "datagen/province.h"
#include "datagen/worked_example.h"
#include "fusion/pipeline.h"
#include "obs/trace.h"

namespace tpiin {
namespace {

struct PipelineRun {
  std::vector<std::array<uint32_t, 3>> edge_list;
  DetectionResult detection;
  std::vector<double> scores;
  size_t trace_events = 0;
};

PipelineRun RunPipeline(const RawDataset& dataset, uint32_t num_threads,
                        bool traced) {
  TraceRecorder recorder;
  if (traced) recorder.Install();

  FusionOptions fusion;
  fusion.num_threads = num_threads;
  auto fused = BuildTpiin(dataset, fusion);
  EXPECT_TRUE(fused.ok());

  DetectorOptions detect;
  detect.num_threads = num_threads;
  auto detection = DetectSuspiciousGroups(fused->tpiin, detect);
  EXPECT_TRUE(detection.ok());

  ScoringResult scoring = ScoreDetection(fused->tpiin, *detection);

  if (traced) TraceRecorder::Uninstall();

  PipelineRun run;
  run.edge_list = fused->tpiin.ToEdgeList();
  run.detection = std::move(*detection);
  run.scores = std::move(scoring.group_scores);
  run.trace_events = recorder.NumEvents();
  return run;
}

void ExpectRunsIdentical(const PipelineRun& expected,
                         const PipelineRun& actual) {
  EXPECT_EQ(actual.edge_list, expected.edge_list);

  const DetectionResult& ed = expected.detection;
  const DetectionResult& ad = actual.detection;
  EXPECT_EQ(ad.num_simple, ed.num_simple);
  EXPECT_EQ(ad.num_complex, ed.num_complex);
  EXPECT_EQ(ad.num_cycle_groups, ed.num_cycle_groups);
  EXPECT_EQ(ad.num_trails, ed.num_trails);
  EXPECT_EQ(ad.suspicious_trades, ed.suspicious_trades);
  ASSERT_EQ(ad.groups.size(), ed.groups.size());
  for (size_t i = 0; i < ed.groups.size(); ++i) {
    EXPECT_EQ(ad.groups[i].members, ed.groups[i].members) << "group " << i;
  }

  // Per-subTPIIN shapes (not timings) are part of the deterministic
  // surface too: the profile rows must agree in every non-time field.
  ASSERT_EQ(ad.sub_profiles.size(), ed.sub_profiles.size());
  for (size_t i = 0; i < ed.sub_profiles.size(); ++i) {
    EXPECT_EQ(ad.sub_profiles[i].index, ed.sub_profiles[i].index);
    EXPECT_EQ(ad.sub_profiles[i].num_nodes, ed.sub_profiles[i].num_nodes);
    EXPECT_EQ(ad.sub_profiles[i].num_arcs, ed.sub_profiles[i].num_arcs);
    EXPECT_EQ(ad.sub_profiles[i].num_trails,
              ed.sub_profiles[i].num_trails);
    EXPECT_EQ(ad.sub_profiles[i].num_groups,
              ed.sub_profiles[i].num_groups);
  }

  // Scores exactly equal: same floating-point ops in the same order.
  ASSERT_EQ(actual.scores.size(), expected.scores.size());
  for (size_t i = 0; i < expected.scores.size(); ++i) {
    EXPECT_EQ(actual.scores[i], expected.scores[i]) << "score " << i;
  }
}

TEST(ObsDeterminismTest, TracingOnOffAtOneAndEightThreads) {
  RawDataset dataset = BuildWorkedExampleDataset();

  PipelineRun baseline = RunPipeline(dataset, 1, /*traced=*/false);
  EXPECT_EQ(baseline.trace_events, 0u);

  for (uint32_t threads : {1u, 8u}) {
    for (bool traced : {false, true}) {
      PipelineRun run = RunPipeline(dataset, threads, traced);
      ExpectRunsIdentical(baseline, run);
      if (traced) {
        EXPECT_GT(run.trace_events, 0u)
            << "tracing enabled but no spans recorded";
      } else {
        EXPECT_EQ(run.trace_events, 0u);
      }
    }
  }
}

TEST(ObsDeterminismTest, SeededProvinceTracedMatchesUntraced) {
  ProvinceConfig config = SmallProvinceConfig(300, 23);
  config.trading_probability = 0.02;
  config.num_investment_cycles = 2;
  auto province = GenerateProvince(config);
  ASSERT_TRUE(province.ok());

  PipelineRun untraced = RunPipeline(province->dataset, 8, false);
  PipelineRun traced = RunPipeline(province->dataset, 8, true);
  ExpectRunsIdentical(untraced, traced);
  EXPECT_GT(traced.trace_events, 0u);
}

TEST(ObsDeterminismTest, TraceJsonIsReproducibleInShape) {
  // Two traced single-threaded runs record the same spans in the same
  // order (timestamps differ; names and nesting do not).
  RawDataset dataset = BuildWorkedExampleDataset();

  auto span_names = [&]() {
    TraceRecorder recorder;
    recorder.Install();
    auto fused = BuildTpiin(dataset);
    EXPECT_TRUE(fused.ok());
    auto detection = DetectSuspiciousGroups(fused->tpiin);
    EXPECT_TRUE(detection.ok());
    TraceRecorder::Uninstall();
    std::vector<std::string> names;
    for (const TraceRecorder::SpanEvent& e : recorder.MergedEvents()) {
      names.push_back(e.name);
    }
    return names;
  };

  std::vector<std::string> first = span_names();
  std::vector<std::string> second = span_names();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace tpiin

// Prometheus text exposition: name mangling, family types, cumulative
// histogram buckets with +Inf/sum/count, and the derived p50/p90/p99
// gauge families.

#include "obs/prometheus.h"

#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace tpiin {
namespace {

TEST(PrometheusTest, NameManglesDotsAndPrefix) {
  EXPECT_EQ(PrometheusName("serve.latency_us.groups", "tpiin_"),
            "tpiin_serve_latency_us_groups");
  EXPECT_EQ(PrometheusName("a-b c/d", ""), "a_b_c_d");
  EXPECT_EQ(PrometheusName("Already_Legal:09", "x_"), "x_Already_Legal:09");
}

TEST(PrometheusTest, CounterGetsTotalSuffix) {
  MetricsRegistry registry;
  registry.GetCounter("serve.requests").Add(7);
  const std::string text = RenderPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE tpiin_serve_requests_total counter\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("tpiin_serve_requests_total 7\n"), std::string::npos)
      << text;
}

TEST(PrometheusTest, GaugeKeepsSignedValue) {
  MetricsRegistry registry;
  registry.GetGauge("serve.inflight").Set(-3);
  const std::string text = RenderPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE tpiin_serve_inflight gauge\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("tpiin_serve_inflight -3\n"), std::string::npos)
      << text;
}

TEST(PrometheusTest, HistogramBucketsAreCumulative) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("lat");
  h.Record(0);  // bucket le="0"
  h.Record(1);  // bucket le="1"
  h.Record(5);  // bucket le="7"
  h.Record(7);  // bucket le="7"
  const std::string text = RenderPrometheusText(registry.Snapshot(), "t_");

  EXPECT_NE(text.find("# TYPE t_lat histogram\n"), std::string::npos)
      << text;
  // Log2 buckets, cumulative counts: 1 at le=0, 2 at le=1, 4 at le=7.
  EXPECT_NE(text.find("t_lat_bucket{le=\"0\"} 1\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("t_lat_bucket{le=\"1\"} 2\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("t_lat_bucket{le=\"7\"} 4\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("t_lat_bucket{le=\"+Inf\"} 4\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("t_lat_sum 13\n"), std::string::npos) << text;
  EXPECT_NE(text.find("t_lat_count 4\n"), std::string::npos) << text;
}

TEST(PrometheusTest, HistogramDerivesQuantileGauges) {
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("lat");
  for (int i = 0; i < 99; ++i) h.Record(10);  // bucket le="15"
  h.Record(1000);                             // bucket le="1023"
  const std::string text = RenderPrometheusText(registry.Snapshot(), "t_");

  EXPECT_NE(text.find("# TYPE t_lat_p50 gauge\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("t_lat_p50 15\n"), std::string::npos) << text;
  EXPECT_NE(text.find("t_lat_p90 15\n"), std::string::npos) << text;
  // The 99th of 100 samples is still in the first bucket; p99's rank
  // (ceil(0.99 * 100) = 99) lands there, not on the outlier.
  EXPECT_NE(text.find("t_lat_p99 15\n"), std::string::npos) << text;
}

TEST(PrometheusTest, EmptySnapshotRendersEmpty) {
  MetricsRegistry registry;
  EXPECT_EQ(RenderPrometheusText(registry.Snapshot()), "");
}

TEST(PrometheusTest, MixedFamiliesStaySorted) {
  MetricsRegistry registry;
  registry.GetCounter("zz").Add(1);
  registry.GetGauge("aa").Set(2);
  registry.GetHistogram("mm").Record(3);
  const std::string text = RenderPrometheusText(registry.Snapshot());
  const size_t aa = text.find("tpiin_aa ");
  const size_t mm = text.find("tpiin_mm_count ");
  const size_t zz = text.find("tpiin_zz_total ");
  ASSERT_NE(aa, std::string::npos) << text;
  ASSERT_NE(mm, std::string::npos) << text;
  ASSERT_NE(zz, std::string::npos) << text;
  EXPECT_LT(aa, mm);
  EXPECT_LT(mm, zz);
}

}  // namespace
}  // namespace tpiin

// MetricsRegistry: sharded counter totals under concurrency, gauge
// high-water marks, log2 histogram buckets, and snapshot-after-merge
// counts.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "common/thread_pool.h"
#include "obs/metrics.h"

namespace tpiin {
namespace {

TEST(MetricsTest, CounterSumsShards) {
  Counter counter;
  counter.Add();
  counter.Add(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Reset();
  EXPECT_EQ(counter.Value(), 0u);
}

TEST(MetricsTest, CounterConcurrentAddsAreLossless) {
  constexpr size_t kThreads = 8;
  constexpr uint64_t kAddsPerThread = 10000;
  Counter counter;
  ThreadPool::Global().ParallelFor(kThreads, kThreads, [&](size_t) {
    for (uint64_t i = 0; i < kAddsPerThread; ++i) counter.Add();
  });
  EXPECT_EQ(counter.Value(), kThreads * kAddsPerThread);
}

TEST(MetricsTest, GaugeSetAndMax) {
  Gauge gauge;
  gauge.Set(7);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.SetMax(3);
  EXPECT_EQ(gauge.Value(), 7) << "SetMax must not lower the gauge";
  gauge.SetMax(19);
  EXPECT_EQ(gauge.Value(), 19);
}

TEST(MetricsTest, GaugeConcurrentMaxKeepsHighWater) {
  Gauge gauge;
  ThreadPool::Global().ParallelFor(64, 8, [&](size_t i) {
    gauge.SetMax(static_cast<int64_t>(i));
  });
  EXPECT_EQ(gauge.Value(), 63);
}

TEST(MetricsTest, HistogramLog2Buckets) {
  Histogram histogram;
  histogram.Record(0);  // bit_width 0 -> upper bound 0.
  histogram.Record(1);  // bit_width 1 -> upper bound 1.
  histogram.Record(5);  // bit_width 3 -> upper bound 7.
  histogram.Record(7);
  EXPECT_EQ(histogram.Count(), 4u);
  EXPECT_EQ(histogram.Sum(), 13u);
  EXPECT_EQ(histogram.Min(), 0u);
  EXPECT_EQ(histogram.Max(), 7u);

  auto buckets = histogram.Buckets();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], (std::pair<uint64_t, uint64_t>{0, 1}));
  EXPECT_EQ(buckets[1], (std::pair<uint64_t, uint64_t>{1, 1}));
  EXPECT_EQ(buckets[2], (std::pair<uint64_t, uint64_t>{7, 2}));
}

TEST(MetricsTest, RegistryHandlesAreStableAcrossReset) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("stable");
  counter.Add(5);
  registry.Reset();
  EXPECT_EQ(counter.Value(), 0u);
  EXPECT_EQ(&registry.GetCounter("stable"), &counter);
  counter.Add(2);
  EXPECT_EQ(registry.GetCounter("stable").Value(), 2u);
}

TEST(MetricsTest, SnapshotAfterConcurrentMergeCounts) {
  MetricsRegistry registry;
  Counter& events = registry.GetCounter("test.events");
  Gauge& peak = registry.GetGauge("test.peak");
  Histogram& sizes = registry.GetHistogram("test.sizes");

  constexpr size_t kItems = 1000;
  ThreadPool::Global().ParallelFor(kItems, 8, [&](size_t i) {
    events.Add();
    peak.SetMax(static_cast<int64_t>(i));
    sizes.Record(i);
  });

  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.entries.size(), 3u);

  const MetricsSnapshot::Entry* events_entry =
      snapshot.Find("test.events");
  ASSERT_NE(events_entry, nullptr);
  EXPECT_EQ(events_entry->kind, MetricsSnapshot::Kind::kCounter);
  EXPECT_EQ(events_entry->value, kItems);

  const MetricsSnapshot::Entry* peak_entry = snapshot.Find("test.peak");
  ASSERT_NE(peak_entry, nullptr);
  EXPECT_EQ(peak_entry->gauge, static_cast<int64_t>(kItems - 1));

  const MetricsSnapshot::Entry* sizes_entry = snapshot.Find("test.sizes");
  ASSERT_NE(sizes_entry, nullptr);
  EXPECT_EQ(sizes_entry->count, kItems);
  EXPECT_EQ(sizes_entry->sum, kItems * (kItems - 1) / 2);
  EXPECT_EQ(sizes_entry->min, 0u);
  EXPECT_EQ(sizes_entry->max, kItems - 1);

  EXPECT_EQ(snapshot.Find("test.absent"), nullptr);
}

TEST(MetricsTest, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.GetCounter("zebra");
  registry.GetGauge("alpha");
  registry.GetHistogram("mid");
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.entries.size(), 3u);
  EXPECT_EQ(snapshot.entries[0].name, "alpha");
  EXPECT_EQ(snapshot.entries[1].name, "mid");
  EXPECT_EQ(snapshot.entries[2].name, "zebra");
}

TEST(MetricsTest, ToJsonShape) {
  MetricsRegistry registry;
  registry.GetCounter("c").Add(3);
  registry.GetGauge("g").Set(-4);
  registry.GetHistogram("h").Record(6);
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_NE(json.find("\"c\": {\"type\": \"counter\", \"value\": 3}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"g\": {\"type\": \"gauge\", \"value\": -4}"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"h\": {\"type\": \"histogram\", \"count\": 1"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"buckets\": [[7,1]]"), std::string::npos) << json;
}

TEST(QuantileTest, EmptyBucketsAreZero) {
  EXPECT_EQ(QuantileFromBuckets({}, 0.5), 0u);
  EXPECT_EQ(QuantileFromBuckets({{4, 0}}, 0.5), 0u);
}

TEST(QuantileTest, ExactBucketEdges) {
  // Nearest-rank over cumulative counts: rank = ceil(q * total),
  // clamped to [1, total]; the answer is the upper bound of the first
  // bucket whose cumulative count reaches the rank.
  const std::vector<std::pair<uint64_t, uint64_t>> buckets = {
      {1, 1}, {3, 1}, {7, 2}};  // total = 4
  EXPECT_EQ(QuantileFromBuckets(buckets, 0.0), 1u);    // rank 1
  EXPECT_EQ(QuantileFromBuckets(buckets, 0.25), 1u);   // rank 1, edge
  EXPECT_EQ(QuantileFromBuckets(buckets, 0.26), 3u);   // rank 2
  EXPECT_EQ(QuantileFromBuckets(buckets, 0.5), 3u);    // rank 2, edge
  EXPECT_EQ(QuantileFromBuckets(buckets, 0.51), 7u);   // rank 3
  EXPECT_EQ(QuantileFromBuckets(buckets, 0.75), 7u);   // rank 3, edge
  EXPECT_EQ(QuantileFromBuckets(buckets, 1.0), 7u);    // rank 4
}

TEST(QuantileTest, QIsClampedToUnitInterval) {
  const std::vector<std::pair<uint64_t, uint64_t>> buckets = {{1, 1},
                                                              {15, 9}};
  EXPECT_EQ(QuantileFromBuckets(buckets, -0.5), 1u);
  EXPECT_EQ(QuantileFromBuckets(buckets, 2.0), 15u);
}

TEST(QuantileTest, SingleBucketAnswersItsBound) {
  const std::vector<std::pair<uint64_t, uint64_t>> buckets = {{255, 12}};
  EXPECT_EQ(QuantileFromBuckets(buckets, 0.0), 255u);
  EXPECT_EQ(QuantileFromBuckets(buckets, 0.99), 255u);
}

TEST(QuantileTest, EntryQuantileClampsToObservedRange) {
  // A histogram that saw only the value 9 puts it in the le=15 bucket;
  // the raw bucket bound overstates it, so Entry::Quantile clamps to
  // the observed [min, max].
  MetricsRegistry registry;
  registry.GetHistogram("h").Record(9);
  MetricsSnapshot snapshot = registry.Snapshot();
  const MetricsSnapshot::Entry* entry = snapshot.Find("h");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->Quantile(0.5), 9u);
  EXPECT_EQ(entry->Quantile(0.99), 9u);

  // With a spread, the clamp still pins p100 to the exact max.
  registry.GetHistogram("h").Record(1000);
  snapshot = registry.Snapshot();
  entry = snapshot.Find("h");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->Quantile(1.0), 1000u);
  // p0 answers the first bucket's bound (15, the log2 resolution around
  // 9) — inside [min, max], so the clamp leaves it alone.
  EXPECT_EQ(entry->Quantile(0.0), 15u);
}

TEST(MetricsTest, MacrosFeedTheGlobalRegistry) {
  MetricsRegistry::Global().Reset();
  TPIIN_COUNTER_ADD("macro.counter", 2);
  TPIIN_COUNTER_ADD("macro.counter", 3);
  TPIIN_GAUGE_SET("macro.gauge", 11);
  TPIIN_GAUGE_MAX("macro.gauge", 9);
  TPIIN_HISTOGRAM_RECORD("macro.histogram", 4);

  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  const MetricsSnapshot::Entry* counter = snapshot.Find("macro.counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value, 5u);
  const MetricsSnapshot::Entry* gauge = snapshot.Find("macro.gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->gauge, 11);
  const MetricsSnapshot::Entry* histogram =
      snapshot.Find("macro.histogram");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->count, 1u);
}

}  // namespace
}  // namespace tpiin

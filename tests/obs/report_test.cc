// RunReport: JSON shape, stage accounting, section/table ordering, and
// the pipeline report hooks (AddFusionToReport / AddDetectionToReport).

#include <gtest/gtest.h>

#include <string>

#include "core/detector.h"
#include "datagen/worked_example.h"
#include "fusion/pipeline.h"
#include "obs/report.h"

namespace tpiin {
namespace {

TEST(ReportValueTest, RendersEveryAlternative) {
  EXPECT_EQ(ReportValueToJson(ReportValue(int64_t{-3})), "-3");
  EXPECT_EQ(ReportValueToJson(ReportValue(uint64_t{7})), "7");
  EXPECT_EQ(ReportValueToJson(ReportValue(0.5)), "0.5");
  EXPECT_EQ(ReportValueToJson(ReportValue(true)), "true");
  EXPECT_EQ(ReportValueToJson(ReportValue(std::string("a\"b"))),
            "\"a\\\"b\"");
}

TEST(ReportTest, StageSumAndSections) {
  RunReport report("unit");
  report.set_threads(4);
  report.AddStage("one", 0.25, 0.5);
  report.AddStage("two", 0.75, 1.5);
  report.set_total_seconds(1.0);
  EXPECT_DOUBLE_EQ(report.StageSecondsSum(), 1.0);

  ReportSection& section = report.Section("stats");
  section.Set("count", size_t{3});
  section.Set("ratio", 0.5);
  section.Set("label", "x");
  // Create-or-get: the same section comes back, and overwrites keep the
  // original key order.
  report.Section("stats").Set("count", size_t{4});
  ASSERT_EQ(report.Section("stats").items().size(), 3u);
  EXPECT_EQ(report.Section("stats").items()[0].first, "count");

  ReportTable& table = report.AddTable("rows", {"name", "value"});
  table.AddRow().Append("a").Append(1);
  table.AddRow().Append("b").Append(2);

  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"tool\": \"unit\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"threads\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"total_seconds\": 1"), std::string::npos) << json;
  // The RSS value is live-sampled, so assert up to the key only.
  EXPECT_NE(json.find("{\"name\": \"one\", \"seconds\": 0.25, "
                      "\"cpu_seconds\": 0.5, \"peak_rss_bytes\": "),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"count\": 4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"columns\": [\"name\", \"value\"]"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"rows\": [[\"a\", 1], [\"b\", 2]]"),
            std::string::npos)
      << json;
  // No metrics attached: an empty object, not a dangling key.
  EXPECT_NE(json.find("\"metrics\": {}"), std::string::npos) << json;
}

TEST(ReportTest, EmptyReportIsWellFormed) {
  RunReport report("empty");
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"stages\": []"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sections\": {}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"tables\": {}"), std::string::npos) << json;
}

TEST(ReportTest, AttachedMetricsAppear) {
  MetricsRegistry registry;
  registry.GetCounter("attached.counter").Add(9);
  RunReport report("metrics");
  report.AttachMetrics(registry.Snapshot());
  EXPECT_NE(report.ToJson().find("\"attached.counter\""),
            std::string::npos);
}

TEST(ReportTest, FusionReportCoversStagesAndStats) {
  RawDataset dataset = BuildWorkedExampleDataset();
  auto fused = BuildTpiin(dataset);
  ASSERT_TRUE(fused.ok());

  RunReport report("fuse");
  AddFusionToReport(*fused, &report);

  // The four measured stages partition the run (ISSUE acceptance: sum
  // within 5% of wall — generously bounded here to keep CI headroom on
  // loaded machines).
  EXPECT_GT(report.total_seconds(), 0.0);
  EXPECT_LE(report.StageSecondsSum(), report.total_seconds());
  // The worked example runs in tens of microseconds, so one
  // descheduling between stage timers can dwarf the stages themselves
  // under a loaded parallel ctest run; only assert the stages-cover-
  // the-total ratio when the run was long enough to be meaningful.
  if (report.total_seconds() > 1e-3) {
    EXPECT_GT(report.StageSecondsSum(), 0.5 * report.total_seconds());
  } else {
    EXPECT_GT(report.StageSecondsSum(), 0.0);
  }

  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"layers\""), std::string::npos);
  EXPECT_NE(json.find("\"assemble\""), std::string::npos);
  EXPECT_NE(json.find("\"overlay\""), std::string::npos);
  EXPECT_NE(json.find("\"build\""), std::string::npos);
  EXPECT_NE(json.find("\"fusion\""), std::string::npos);
  EXPECT_NE(json.find("\"trading_arcs\""), std::string::npos);
}

TEST(ReportTest, DetectionReportCoversStagesAndTopK) {
  RawDataset dataset = BuildWorkedExampleDataset();
  auto fused = BuildTpiin(dataset);
  ASSERT_TRUE(fused.ok());
  auto detection = DetectSuspiciousGroups(fused->tpiin);
  ASSERT_TRUE(detection.ok());
  ASSERT_GT(detection->num_subtpiins, 0u);
  EXPECT_EQ(detection->sub_profiles.size(), detection->num_subtpiins);
  EXPECT_EQ(detection->segment_stats.num_emitted,
            detection->num_subtpiins);

  RunReport report("detect");
  AddDetectionToReport(*detection, /*top_k=*/2, &report);

  EXPECT_GT(report.total_seconds(), 0.0);
  EXPECT_LE(report.StageSecondsSum(), report.total_seconds());
  // The worked example runs in tens of microseconds, so one
  // descheduling between stage timers can dwarf the stages themselves
  // under a loaded parallel ctest run; only assert the stages-cover-
  // the-total ratio when the run was long enough to be meaningful.
  if (report.total_seconds() > 1e-3) {
    EXPECT_GT(report.StageSecondsSum(), 0.5 * report.total_seconds());
  } else {
    EXPECT_GT(report.StageSecondsSum(), 0.0);
  }

  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"segment\""), std::string::npos);
  EXPECT_NE(json.find("\"mine\""), std::string::npos);
  EXPECT_NE(json.find("\"finalize\""), std::string::npos);
  EXPECT_NE(json.find("\"detection\""), std::string::npos);
  EXPECT_NE(json.find("\"segmentation\""), std::string::npos);
  EXPECT_NE(json.find("\"slowest_subtpiins\""), std::string::npos);
}

TEST(ReportTest, TopKClampsToProfileCount) {
  DetectionResult result;
  result.timings.total_seconds = 1.0;
  SubTpiinProfile slow;
  slow.index = 0;
  slow.pattern_seconds = 0.5;
  SubTpiinProfile fast;
  fast.index = 1;
  fast.pattern_seconds = 0.1;
  result.sub_profiles = {fast, slow};

  RunReport report("detect");
  AddDetectionToReport(result, /*top_k=*/10, &report);
  const std::string json = report.ToJson();
  // Both rows present, slowest first.
  size_t slow_at = json.find("[0, 0, 0, 0, 0, 0.5, 0]");
  size_t fast_at = json.find("[1, 0, 0, 0, 0, 0.1, 0]");
  EXPECT_NE(slow_at, std::string::npos) << json;
  EXPECT_NE(fast_at, std::string::npos) << json;
  EXPECT_LT(slow_at, fast_at);
}

}  // namespace
}  // namespace tpiin

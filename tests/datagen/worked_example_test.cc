#include "datagen/worked_example.h"

#include <gtest/gtest.h>

namespace tpiin {
namespace {

TEST(WorkedExampleDatasetTest, MatchesFig7Counts) {
  RawDataset data = BuildWorkedExampleDataset();
  EXPECT_TRUE(data.Validate().ok());
  DatasetStats stats = data.Stats();
  EXPECT_EQ(stats.num_persons, 9u);
  EXPECT_EQ(stats.num_companies, 8u);
  EXPECT_EQ(stats.num_kinship, 1u);
  EXPECT_EQ(stats.num_interlocking, 1u);
  EXPECT_EQ(stats.num_legal_person_links, 8u);
  EXPECT_EQ(stats.num_investment, 2u);
  EXPECT_EQ(stats.num_trades, 5u);
}

TEST(WorkedExampleTpiinTest, MatchesFig8Counts) {
  Tpiin net = BuildWorkedExampleTpiin();
  EXPECT_EQ(net.NumNodes(), 15u);
  EXPECT_EQ(net.num_influence_arcs(), 14u);
  EXPECT_EQ(net.num_trading_arcs(), 5u);
  size_t persons = 0;
  for (NodeId v = 0; v < net.NumNodes(); ++v) {
    persons += net.node(v).color == NodeColor::kPerson;
  }
  EXPECT_EQ(persons, 7u);
}

}  // namespace
}  // namespace tpiin

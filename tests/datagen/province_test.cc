#include "datagen/province.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "fusion/pipeline.h"
#include "graph/topo.h"

namespace tpiin {
namespace {

TEST(ProvinceTest, SmallConfigGeneratesValidDataset) {
  auto province = GenerateProvince(SmallProvinceConfig(40, 7));
  ASSERT_TRUE(province.ok()) << province.status().ToString();
  EXPECT_TRUE(province->dataset.Validate().ok());
  EXPECT_EQ(province->dataset.companies().size(), 40u);
}

TEST(ProvinceTest, DeterministicForSameSeed) {
  auto a = GenerateProvince(SmallProvinceConfig(60, 11));
  auto b = GenerateProvince(SmallProvinceConfig(60, 11));
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->dataset.persons().size(), b->dataset.persons().size());
  EXPECT_EQ(a->dataset.trades().size(), b->dataset.trades().size());
  for (size_t i = 0; i < a->dataset.trades().size(); ++i) {
    EXPECT_EQ(a->dataset.trades()[i].seller, b->dataset.trades()[i].seller);
    EXPECT_EQ(a->dataset.trades()[i].buyer, b->dataset.trades()[i].buyer);
  }
  for (size_t i = 0; i < a->dataset.influence().size(); ++i) {
    EXPECT_EQ(a->dataset.influence()[i].person,
              b->dataset.influence()[i].person);
  }
}

TEST(ProvinceTest, DifferentSeedsDiffer) {
  auto a = GenerateProvince(SmallProvinceConfig(60, 1));
  auto b = GenerateProvince(SmallProvinceConfig(60, 2));
  ASSERT_TRUE(a.ok() && b.ok());
  bool identical = a->dataset.trades().size() == b->dataset.trades().size();
  if (identical) {
    for (size_t i = 0; i < a->dataset.trades().size(); ++i) {
      if (a->dataset.trades()[i].seller != b->dataset.trades()[i].seller) {
        identical = false;
        break;
      }
    }
  }
  EXPECT_FALSE(identical);
}

TEST(ProvinceTest, PaperConfigMatchesPublishedPopulation) {
  ProvinceConfig config = PaperProvinceConfig();
  EXPECT_EQ(config.num_companies, 2452u);
  EXPECT_EQ(config.num_legal_persons, 1350u);
  EXPECT_EQ(config.num_directors, 776u);
  auto province = GenerateProvince(config);
  ASSERT_TRUE(province.ok());
  EXPECT_EQ(province->dataset.persons().size(), 2126u);
  EXPECT_EQ(province->dataset.companies().size(), 2452u);
}

TEST(ProvinceTest, GroupsPartitionCompanies) {
  auto province = GenerateProvince(SmallProvinceConfig(80, 13));
  ASSERT_TRUE(province.ok());
  std::set<CompanyId> seen;
  for (const std::vector<CompanyId>& group : province->groups) {
    EXPECT_FALSE(group.empty());
    for (CompanyId c : group) {
      EXPECT_TRUE(seen.insert(c).second) << "company in two groups";
    }
  }
  EXPECT_EQ(seen.size(), 80u);
}

TEST(ProvinceTest, InvestmentLayerIsAcyclicWithoutInjectedCycles) {
  auto province = GenerateProvince(SmallProvinceConfig(100, 17));
  ASSERT_TRUE(province.ok());
  Digraph gi(static_cast<NodeId>(province->dataset.companies().size()));
  for (const InvestmentRecord& rec : province->dataset.investments()) {
    gi.AddArc(rec.investor, rec.investee, 0);
  }
  EXPECT_TRUE(IsDag(gi));
}

TEST(ProvinceTest, InjectedCyclesCreateSccSyndicates) {
  ProvinceConfig config = SmallProvinceConfig(60, 19);
  config.num_investment_cycles = 2;
  auto province = GenerateProvince(config);
  ASSERT_TRUE(province.ok());
  auto fused = BuildTpiin(province->dataset);
  ASSERT_TRUE(fused.ok());
  EXPECT_GE(fused->stats.company_syndicates, 1u);
}

TEST(ProvinceTest, TooFewLegalPersonsIsError) {
  ProvinceConfig config = SmallProvinceConfig(50, 3);
  config.num_legal_persons = 1;  // Dozens of groups need one LP each.
  auto province = GenerateProvince(config);
  EXPECT_TRUE(province.status().IsInvalidArgument());
}

TEST(ProvinceTest, ZeroCompaniesIsError) {
  ProvinceConfig config;
  config.num_companies = 0;
  EXPECT_TRUE(GenerateProvince(config).status().IsInvalidArgument());
}

TEST(ProvinceTest, FusedProvinceAntecedentIsDag) {
  auto province = GenerateProvince(SmallProvinceConfig(120, 23));
  ASSERT_TRUE(province.ok());
  auto fused = BuildTpiin(province->dataset);
  ASSERT_TRUE(fused.ok());
  EXPECT_TRUE(IsDag(fused->tpiin.graph(), IsInfluenceArc));
}

TEST(TradingNetworkTest, ZeroProbabilityYieldsNoTrades) {
  Rng rng(1);
  EXPECT_TRUE(GenerateTradingNetwork(100, 0.0, rng).empty());
  EXPECT_TRUE(GenerateTradingNetwork(1, 0.5, rng).empty());
}

TEST(TradingNetworkTest, FullProbabilityYieldsCompleteDigraph) {
  Rng rng(1);
  std::vector<TradeRecord> trades = GenerateTradingNetwork(5, 1.0, rng);
  EXPECT_EQ(trades.size(), 20u);  // 5 * 4 ordered pairs.
  std::set<std::pair<CompanyId, CompanyId>> unique;
  for (const TradeRecord& t : trades) {
    EXPECT_NE(t.seller, t.buyer);
    unique.emplace(t.seller, t.buyer);
  }
  EXPECT_EQ(unique.size(), 20u);
}

TEST(TradingNetworkTest, EdgeCountNearExpectation) {
  Rng rng(5);
  constexpr uint32_t kN = 500;
  constexpr double kP = 0.01;
  std::vector<TradeRecord> trades = GenerateTradingNetwork(kN, kP, rng);
  double expected = kN * (kN - 1) * kP;  // 2495.
  EXPECT_NEAR(static_cast<double>(trades.size()), expected,
              5 * std::sqrt(expected));
  for (const TradeRecord& t : trades) {
    EXPECT_LT(t.seller, kN);
    EXPECT_LT(t.buyer, kN);
    EXPECT_NE(t.seller, t.buyer);
  }
}

TEST(TradingNetworkTest, SlotsAreStrictlyIncreasingNoDuplicates) {
  Rng rng(9);
  std::vector<TradeRecord> trades = GenerateTradingNetwork(80, 0.05, rng);
  std::set<std::pair<CompanyId, CompanyId>> unique;
  for (const TradeRecord& t : trades) {
    EXPECT_TRUE(unique.emplace(t.seller, t.buyer).second);
  }
}

}  // namespace
}  // namespace tpiin

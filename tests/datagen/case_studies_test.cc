#include "datagen/case_studies.h"

#include <gtest/gtest.h>

namespace tpiin {
namespace {

TEST(CaseStudiesTest, AllThreeBuildValidDatasets) {
  std::vector<CaseStudy> cases = BuildAllCaseStudies();
  ASSERT_EQ(cases.size(), 3u);
  for (const CaseStudy& cs : cases) {
    EXPECT_TRUE(cs.dataset.Validate().ok()) << cs.title;
    EXPECT_FALSE(cs.title.empty());
    EXPECT_FALSE(cs.narrative.empty());
    EXPECT_GT(cs.expected_adjustment, 0.0);
    EXPECT_FALSE(cs.adjustment_method.empty());
    EXPECT_NE(cs.expected_seller, cs.expected_buyer);
  }
}

TEST(CaseStudiesTest, Case1HasKinshipAndFullOwnership) {
  CaseStudy cs = BuildCaseStudy1();
  EXPECT_EQ(cs.dataset.Stats().num_kinship, 1u);
  ASSERT_EQ(cs.dataset.investments().size(), 1u);
  EXPECT_DOUBLE_EQ(cs.dataset.investments()[0].share, 1.0);
  EXPECT_EQ(cs.adjustment_method, "TNMM");
}

TEST(CaseStudiesTest, Case2HasCommonInvestor) {
  CaseStudy cs = BuildCaseStudy2();
  ASSERT_EQ(cs.dataset.investments().size(), 2u);
  EXPECT_EQ(cs.dataset.investments()[0].investor,
            cs.dataset.investments()[1].investor);
  EXPECT_EQ(cs.adjustment_method, "CUP");
  EXPECT_DOUBLE_EQ(cs.transfer_price, 20.0);
  EXPECT_DOUBLE_EQ(cs.market_price, 30.0);
}

TEST(CaseStudiesTest, Case3HasInterlockedDirectors) {
  CaseStudy cs = BuildCaseStudy3();
  EXPECT_EQ(cs.dataset.Stats().num_interlocking, 3u);
  EXPECT_EQ(cs.adjustment_method, "cost-plus");
  EXPECT_DOUBLE_EQ(cs.cost, 80.0e6);
}

}  // namespace
}  // namespace tpiin

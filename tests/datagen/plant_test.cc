#include "datagen/plant.h"

#include <set>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "datagen/province.h"
#include "fusion/pipeline.h"

namespace tpiin {
namespace {

TEST(PlantTest, PlantedTradesAppendToDataset) {
  auto province = GenerateProvince(SmallProvinceConfig(80, 3));
  ASSERT_TRUE(province.ok());
  size_t before = province->dataset.trades().size();
  Rng rng(4);
  std::vector<PlantedScheme> planted =
      PlantSuspiciousTrades(province->dataset, rng, 10);
  EXPECT_EQ(province->dataset.trades().size(), before + planted.size());
  EXPECT_GT(planted.size(), 0u);
  EXPECT_LE(planted.size(), 10u);
}

TEST(PlantTest, NoDuplicatePairsPlanted) {
  auto province = GenerateProvince(SmallProvinceConfig(100, 5));
  ASSERT_TRUE(province.ok());
  Rng rng(6);
  std::vector<PlantedScheme> planted =
      PlantSuspiciousTrades(province->dataset, rng, 50);
  std::set<std::pair<CompanyId, CompanyId>> pairs;
  for (const PlantedScheme& scheme : planted) {
    EXPECT_NE(scheme.seller, scheme.buyer);
    EXPECT_TRUE(pairs.emplace(scheme.seller, scheme.buyer).second);
  }
}

// The accuracy oracle: every planted scheme is suspicious by
// construction, so the detector must flag all of them.
TEST(PlantTest, DetectorFlagsEveryPlantedTrade) {
  for (uint64_t seed : {3u, 9u, 27u}) {
    ProvinceConfig config = SmallProvinceConfig(120, seed);
    config.trading_probability = 0.004;
    auto province = GenerateProvince(config);
    ASSERT_TRUE(province.ok());
    Rng rng(seed + 1);
    std::vector<PlantedScheme> planted =
        PlantSuspiciousTrades(province->dataset, rng, 30);
    ASSERT_GT(planted.size(), 0u);

    auto fused = BuildTpiin(province->dataset);
    ASSERT_TRUE(fused.ok());
    DetectorOptions options;
    options.match.collect_groups = false;
    auto result = DetectSuspiciousGroups(fused->tpiin, options);
    ASSERT_TRUE(result.ok());

    std::set<std::pair<NodeId, NodeId>> suspicious(
        result->suspicious_trades.begin(), result->suspicious_trades.end());
    // Include intra-syndicate findings (a planted pair may fall inside a
    // contracted SCC).
    std::set<std::pair<CompanyId, CompanyId>> intra;
    for (const IntraSyndicateFinding& finding : result->intra_syndicate) {
      intra.emplace(finding.seller, finding.buyer);
    }
    for (const PlantedScheme& scheme : planted) {
      NodeId seller_node = fused->tpiin.NodeOfCompany(scheme.seller);
      NodeId buyer_node = fused->tpiin.NodeOfCompany(scheme.buyer);
      bool flagged =
          suspicious.count({seller_node, buyer_node}) > 0 ||
          intra.count({scheme.seller, scheme.buyer}) > 0;
      EXPECT_TRUE(flagged) << "seed " << seed << ": planted "
                           << SchemeKindName(scheme.kind) << " trade "
                           << scheme.seller << " -> " << scheme.buyer
                           << " not flagged";
    }
  }
}

TEST(PlantTest, SchemeKindNamesAreStable) {
  EXPECT_EQ(SchemeKindName(SchemeKind::kSameInvestor), "same-investor");
  EXPECT_EQ(SchemeKindName(SchemeKind::kLinkedPersons), "linked-persons");
  EXPECT_EQ(SchemeKindName(SchemeKind::kSharedInfluencer),
            "shared-influencer");
  EXPECT_EQ(SchemeKindName(SchemeKind::kInvestorChain), "investor-chain");
}

}  // namespace
}  // namespace tpiin

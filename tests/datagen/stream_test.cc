// Gates two promises the out-of-core path leans on: StreamProvinceCsv
// writes byte-for-byte what SaveDatasetCsv(GenerateProvince(config))
// writes (the sharded and in-memory pipelines consume literally the
// same input), and ScaleConfig's population scaling keeps the largest
// business group bounded while growing the province.

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/province.h"
#include "datagen/stream.h"
#include "io/dataset_csv.h"

namespace tpiin {
namespace {

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

constexpr const char* kTables[] = {
    "persons.csv",    "companies.csv",  "interdependence.csv",
    "influence.csv",  "investment.csv", "trades.csv"};

class StreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (std::filesystem::temp_directory_path() /
            ("tpiin_stream_" + std::to_string(::getpid()) + "_" +
             ::testing::UnitTest::GetInstance()->current_test_info()->name()))
               .string();
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  void ExpectStreamMatchesBatch(const ProvinceConfig& config) {
    const std::string batch_dir = dir_ + "/batch";
    const std::string stream_dir = dir_ + "/stream";
    std::filesystem::create_directories(batch_dir);
    std::filesystem::create_directories(stream_dir);

    Result<Province> province = GenerateProvince(config);
    ASSERT_TRUE(province.ok()) << province.status().ToString();
    ASSERT_TRUE(SaveDatasetCsv(batch_dir, province->dataset).ok());

    Result<StreamStats> stats = StreamProvinceCsv(config, stream_dir);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();

    for (const char* table : kTables) {
      EXPECT_EQ(Slurp(stream_dir + "/" + table),
                Slurp(batch_dir + "/" + table))
          << table << " differs between streamed and batch generation";
    }
    EXPECT_EQ(stats->persons, province->dataset.persons().size());
    EXPECT_EQ(stats->companies, province->dataset.companies().size());
    EXPECT_EQ(stats->trades, province->dataset.trades().size());
  }

  std::string dir_;
};

TEST_F(StreamTest, MatchesBatchGeneratorDefaults) {
  ProvinceConfig config = SmallProvinceConfig(180, /*seed=*/21);
  config.trading_probability = 0.02;
  ExpectStreamMatchesBatch(config);
}

TEST_F(StreamTest, MatchesBatchGeneratorWithCycles) {
  ProvinceConfig config = SmallProvinceConfig(200, /*seed=*/33);
  config.num_investment_cycles = 5;
  config.trading_probability = 0.05;
  ExpectStreamMatchesBatch(config);
}

TEST_F(StreamTest, MatchesBatchGeneratorPaperConfig) {
  ProvinceConfig config = PaperProvinceConfig(/*seed=*/20170402);
  config.trading_probability = 0.01;
  ExpectStreamMatchesBatch(config);
}

TEST_F(StreamTest, OversizedLargeGroupStopsTheListWithoutWrap) {
  // A configured group size near UINT32_MAX must stop the large-group
  // scan: a wrapping `used + s` admission check would accept a group
  // billions of companies larger than the province and hang both
  // generators apportioning persons over it.
  ProvinceConfig config = SmallProvinceConfig(40, /*seed=*/7);
  config.trading_probability = 0.02;
  config.large_group_sizes = {10, ~uint32_t{0} - 2, 8};
  ExpectStreamMatchesBatch(config);
}

TEST(ScaleConfigTest, FactorOneIsIdentity) {
  const ProvinceConfig base = PaperProvinceConfig(7);
  const ProvinceConfig scaled = ScaleConfig(base, 1.0);
  EXPECT_EQ(scaled.num_companies, base.num_companies);
  EXPECT_EQ(scaled.num_legal_persons, base.num_legal_persons);
  EXPECT_EQ(scaled.num_directors, base.num_directors);
  EXPECT_EQ(scaled.large_group_sizes, base.large_group_sizes);
}

TEST(ScaleConfigTest, ShrinkMatchesLegacyLadderScaling) {
  // The scaling bench always scaled this way; ScaleConfig must keep the
  // historical rungs (300/600/1200 companies) bit-compatible.
  const ProvinceConfig base = PaperProvinceConfig(7);
  for (uint32_t companies : {300u, 600u, 1200u}) {
    const double factor =
        static_cast<double>(companies) / base.num_companies;
    const ProvinceConfig scaled = ScaleConfig(base, factor);
    EXPECT_EQ(scaled.num_companies, companies);
    EXPECT_EQ(scaled.num_legal_persons,
              std::max<uint32_t>(
                  4, static_cast<uint32_t>(base.num_legal_persons * factor)));
    EXPECT_EQ(scaled.num_directors,
              std::max<uint32_t>(
                  2, static_cast<uint32_t>(base.num_directors * factor)));
    ASSERT_EQ(scaled.large_group_sizes.size(),
              base.large_group_sizes.size());
    for (size_t i = 0; i < base.large_group_sizes.size(); ++i) {
      EXPECT_EQ(scaled.large_group_sizes[i],
                std::max<uint32_t>(
                    4, static_cast<uint32_t>(base.large_group_sizes[i] *
                                             factor)));
    }
  }
}

TEST(ScaleConfigTest, GrowthTilesGroupsInsteadOfInflating) {
  const ProvinceConfig base = PaperProvinceConfig(7);
  const uint32_t base_max = *std::max_element(
      base.large_group_sizes.begin(), base.large_group_sizes.end());
  for (double factor : {10.0, 100.0, 408.0}) {
    const ProvinceConfig scaled = ScaleConfig(base, factor);
    EXPECT_EQ(scaled.num_companies,
              static_cast<uint32_t>(
                  std::llround(base.num_companies * factor)));
    // The unit of shard balance (and per-shard peak memory) is the
    // largest business group; growth must not inflate it.
    const uint32_t scaled_max =
        *std::max_element(scaled.large_group_sizes.begin(),
                          scaled.large_group_sizes.end());
    EXPECT_EQ(scaled_max, base_max) << "factor " << factor;
    // The group list must fit the company budget (the generator stops
    // consuming at the first group that does not fit).
    const uint64_t listed = std::accumulate(
        scaled.large_group_sizes.begin(), scaled.large_group_sizes.end(),
        uint64_t{0});
    EXPECT_LE(listed, scaled.num_companies) << "factor " << factor;
    // Tiling preserves roughly the large-group fraction of the
    // population: `whole` full copies plus a partial one.
    EXPECT_GE(scaled.large_group_sizes.size(),
              static_cast<size_t>(factor) * base.large_group_sizes.size())
        << "factor " << factor;
  }
}

TEST(ScaleConfigTest, GeneratesValidProvinceAfterScaling) {
  ProvinceConfig config = ScaleConfig(SmallProvinceConfig(200, 3), 0.5);
  config.trading_probability = 0.02;
  Result<Province> province = GenerateProvince(config);
  ASSERT_TRUE(province.ok()) << province.status().ToString();
  EXPECT_EQ(province->dataset.companies().size(), config.num_companies);
}

}  // namespace
}  // namespace tpiin

#include "model/dataset.h"

#include <gtest/gtest.h>

namespace tpiin {
namespace {

// A minimal valid dataset: one LP-eligible person, one company, one LP
// link.
RawDataset MinimalValid() {
  RawDataset data;
  PersonId p = data.AddPerson("L1", kRoleCeo);
  CompanyId c = data.AddCompany("C1");
  data.AddInfluence(p, c, InfluenceKind::kCeoOf, true);
  return data;
}

TEST(DatasetTest, MinimalValidPasses) {
  EXPECT_TRUE(MinimalValid().Validate().ok());
}

TEST(DatasetTest, IdsAreSequential) {
  RawDataset data;
  EXPECT_EQ(data.AddPerson("a", kRoleCeo), 0u);
  EXPECT_EQ(data.AddPerson("b", kRoleCeo), 1u);
  EXPECT_EQ(data.AddCompany("c"), 0u);
  EXPECT_EQ(data.AddCompany("d"), 1u);
}

TEST(DatasetTest, CompanyWithoutLegalPersonFails) {
  RawDataset data;
  data.AddPerson("L1", kRoleCeo);
  data.AddCompany("C1");
  EXPECT_TRUE(data.Validate().IsFailedPrecondition());
}

TEST(DatasetTest, TwoLegalPersonsFail) {
  RawDataset data = MinimalValid();
  PersonId p2 = data.AddPerson("L2", kRoleCeo);
  data.AddInfluence(p2, 0, InfluenceKind::kCeoOf, true);
  EXPECT_TRUE(data.Validate().IsFailedPrecondition());
}

TEST(DatasetTest, LpIneligibleRolesFail) {
  RawDataset data;
  PersonId p = data.AddPerson("D1", kRoleDirector);  // Bare director.
  CompanyId c = data.AddCompany("C1");
  data.AddInfluence(p, c, InfluenceKind::kDirectorOf, true);
  Status status = data.Validate();
  EXPECT_TRUE(status.IsFailedPrecondition());
  EXPECT_NE(status.message().find("LP-ineligible"), std::string::npos);
}

TEST(DatasetTest, NonLpDirectorLinkWithAnyRolesIsFine) {
  RawDataset data = MinimalValid();
  PersonId d = data.AddPerson("D1", kRoleDirector);
  data.AddInfluence(d, 0, InfluenceKind::kDirectorOf, false);
  EXPECT_TRUE(data.Validate().ok());
}

TEST(DatasetTest, OutOfRangeReferencesFail) {
  {
    RawDataset data = MinimalValid();
    data.AddInterdependence(0, 99, InterdependenceKind::kKinship);
    EXPECT_TRUE(data.Validate().IsInvalidArgument());
  }
  {
    RawDataset data = MinimalValid();
    data.AddInfluence(99, 0, InfluenceKind::kCeoOf, false);
    EXPECT_TRUE(data.Validate().IsInvalidArgument());
  }
  {
    RawDataset data = MinimalValid();
    data.AddInvestment(0, 99, 0.5);
    EXPECT_TRUE(data.Validate().IsInvalidArgument());
  }
  {
    RawDataset data = MinimalValid();
    data.AddTrade(99, 0);
    EXPECT_TRUE(data.Validate().IsInvalidArgument());
  }
}

TEST(DatasetTest, SelfReferencesFail) {
  {
    RawDataset data = MinimalValid();
    data.AddInterdependence(0, 0, InterdependenceKind::kKinship);
    EXPECT_TRUE(data.Validate().IsInvalidArgument());
  }
  {
    RawDataset data = MinimalValid();
    data.AddCompany("C2");  // No LP -> add one.
    PersonId p2 = data.AddPerson("L2", kRoleCeo);
    data.AddInfluence(p2, 1, InfluenceKind::kCeoOf, true);
    data.AddInvestment(1, 1, 0.5);
    EXPECT_TRUE(data.Validate().IsInvalidArgument());
  }
  {
    RawDataset data = MinimalValid();
    data.AddTrade(0, 0);
    EXPECT_TRUE(data.Validate().IsInvalidArgument());
  }
}

TEST(DatasetTest, InvestmentShareBounds) {
  RawDataset data = MinimalValid();
  PersonId p2 = data.AddPerson("L2", kRoleCeo);
  CompanyId c2 = data.AddCompany("C2");
  data.AddInfluence(p2, c2, InfluenceKind::kCeoOf, true);
  data.AddInvestment(0, c2, 1.0);  // Inclusive upper bound OK.
  EXPECT_TRUE(data.Validate().ok());
  data.AddInvestment(c2, 0, 0.0);  // Zero share invalid.
  EXPECT_TRUE(data.Validate().IsInvalidArgument());
}

TEST(DatasetTest, StatsCountEverything) {
  RawDataset data = MinimalValid();
  PersonId p2 = data.AddPerson("L2", kRoleCeo);
  CompanyId c2 = data.AddCompany("C2");
  data.AddInfluence(p2, c2, InfluenceKind::kCeoOf, true);
  data.AddInterdependence(0, p2, InterdependenceKind::kKinship);
  data.AddInterdependence(0, p2, InterdependenceKind::kInterlocking);
  data.AddInvestment(0, c2, 0.6);
  data.AddTrade(0, c2);
  DatasetStats stats = data.Stats();
  EXPECT_EQ(stats.num_persons, 2u);
  EXPECT_EQ(stats.num_companies, 2u);
  EXPECT_EQ(stats.num_kinship, 1u);
  EXPECT_EQ(stats.num_interlocking, 1u);
  EXPECT_EQ(stats.num_influence, 2u);
  EXPECT_EQ(stats.num_legal_person_links, 2u);
  EXPECT_EQ(stats.num_investment, 1u);
  EXPECT_EQ(stats.num_trades, 1u);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(DatasetTest, SetTradesReplacesLayer) {
  RawDataset data = MinimalValid();
  data.AddTrade(0, 0);  // Invalid, about to be replaced.
  data.SetTrades({});
  EXPECT_TRUE(data.Validate().ok());
  EXPECT_TRUE(data.trades().empty());
}

TEST(RecordsTest, KindNames) {
  EXPECT_EQ(InterdependenceKindName(InterdependenceKind::kKinship),
            "kinship");
  EXPECT_EQ(InterdependenceKindName(InterdependenceKind::kInterlocking),
            "interlocking");
  EXPECT_EQ(InfluenceKindName(InfluenceKind::kCeoAndDirectorOf),
            "is-CEO-and-D-of");
  EXPECT_EQ(InfluenceKindName(InfluenceKind::kDirectorOf), "is-a-D-of");
}

}  // namespace
}  // namespace tpiin

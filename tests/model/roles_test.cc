#include "model/roles.h"

#include <set>

#include <gtest/gtest.h>

namespace tpiin {
namespace {

TEST(RolesTest, ReductionFoldsShareholderIntoDirector) {
  EXPECT_EQ(ReduceRoles(kRoleShareholder), kRoleDirector);
  EXPECT_EQ(ReduceRoles(kRoleShareholder | kRoleDirector), kRoleDirector);
  EXPECT_EQ(ReduceRoles(kRoleShareholder | kRoleCeo),
            kRoleCeo | kRoleDirector);
  EXPECT_EQ(ReduceRoles(kRoleCeo), kRoleCeo);
  EXPECT_EQ(ReduceRoles(0), 0);
}

TEST(RolesTest, FifteenRawSubclassesReduceToSeven) {
  // §4.1: the 15 non-empty subclasses of {S, D, CEO, CB} reduce to the 7
  // non-empty subclasses of {D, CEO, CB}.
  std::vector<PersonRoles> raw = AllRawRoleSubclasses();
  EXPECT_EQ(raw.size(), 15u);
  std::set<PersonRoles> reduced;
  for (PersonRoles mask : raw) reduced.insert(ReduceRoles(mask));
  EXPECT_EQ(reduced.size(), 7u);
  EXPECT_EQ(AllReducedRoleSubclasses().size(), 7u);
  for (PersonRoles mask : reduced) {
    EXPECT_EQ(mask & kRoleShareholder, 0);
    EXPECT_NE(mask, 0);
  }
}

TEST(RolesTest, LegalPersonEligibility) {
  // §4.1: an LP is a CB, an executive/managing director (CEO&D), or a
  // CEO — every reduced subclass except the bare Director.
  EXPECT_TRUE(RolesEligibleForLegalPerson(kRoleCeo));
  EXPECT_TRUE(RolesEligibleForLegalPerson(kRoleChairman));
  EXPECT_TRUE(RolesEligibleForLegalPerson(kRoleCeo | kRoleDirector));
  EXPECT_TRUE(RolesEligibleForLegalPerson(kRoleDirector | kRoleChairman));
  EXPECT_TRUE(RolesEligibleForLegalPerson(kRoleCeo | kRoleDirector |
                                          kRoleChairman));
  EXPECT_FALSE(RolesEligibleForLegalPerson(kRoleDirector));
  EXPECT_FALSE(RolesEligibleForLegalPerson(0));
  // A bare shareholder reduces to a bare director: ineligible.
  EXPECT_FALSE(RolesEligibleForLegalPerson(kRoleShareholder));
}

TEST(RolesTest, ExactlySixLpEligibleSubclasses) {
  int eligible = 0;
  for (PersonRoles mask : AllReducedRoleSubclasses()) {
    if (RolesEligibleForLegalPerson(mask)) ++eligible;
  }
  EXPECT_EQ(eligible, 6);  // The paper's six LP subclasses.
}

TEST(RolesTest, SubclassNames) {
  EXPECT_EQ(RoleSubclassName(0), "none");
  EXPECT_EQ(RoleSubclassName(kRoleCeo), "CEO");
  EXPECT_EQ(RoleSubclassName(kRoleDirector), "D");
  EXPECT_EQ(RoleSubclassName(kRoleShareholder), "S");
  EXPECT_EQ(RoleSubclassName(kRoleChairman), "CB");
  EXPECT_EQ(
      RoleSubclassName(kRoleCeo | kRoleDirector | kRoleChairman),
      "CEO&D&CB");
  EXPECT_EQ(RoleSubclassName(kRoleDirector | kRoleShareholder), "D&S");
}

}  // namespace
}  // namespace tpiin

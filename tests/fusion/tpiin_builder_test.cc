#include <gtest/gtest.h>

#include "fusion/tpiin.h"

namespace tpiin {
namespace {

TEST(TpiinBuilderTest, MinimalNetwork) {
  TpiinBuilder builder;
  NodeId p = builder.AddPersonNode("P1");
  NodeId c = builder.AddCompanyNode("C1");
  builder.AddInfluenceArc(p, c);
  Result<Tpiin> net = builder.Build();
  ASSERT_TRUE(net.ok()) << net.status().ToString();
  EXPECT_EQ(net->NumNodes(), 2u);
  EXPECT_EQ(net->num_influence_arcs(), 1u);
  EXPECT_EQ(net->num_trading_arcs(), 0u);
  EXPECT_EQ(net->Label(p), "P1");
  EXPECT_EQ(net->node(p).color, NodeColor::kPerson);
  EXPECT_EQ(net->node(c).color, NodeColor::kCompany);
}

TEST(TpiinBuilderTest, InfluenceIntoPersonRejected) {
  TpiinBuilder builder;
  NodeId p1 = builder.AddPersonNode("P1");
  NodeId p2 = builder.AddPersonNode("P2");
  builder.AddInfluenceArc(p1, p2);
  EXPECT_TRUE(builder.Build().status().IsFailedPrecondition());
}

TEST(TpiinBuilderTest, TradingBetweenNonCompaniesRejected) {
  TpiinBuilder builder;
  NodeId p = builder.AddPersonNode("P1");
  NodeId c = builder.AddCompanyNode("C1");
  builder.AddTradingArc(p, c);
  EXPECT_TRUE(builder.Build().status().IsFailedPrecondition());
}

TEST(TpiinBuilderTest, TradingSelfLoopRejected) {
  TpiinBuilder builder;
  NodeId c = builder.AddCompanyNode("C1");
  builder.AddTradingArc(c, c);
  EXPECT_TRUE(builder.Build().status().IsFailedPrecondition());
}

TEST(TpiinBuilderTest, InfluenceAfterTradingRejected) {
  TpiinBuilder builder;
  NodeId p = builder.AddPersonNode("P1");
  NodeId c1 = builder.AddCompanyNode("C1");
  NodeId c2 = builder.AddCompanyNode("C2");
  builder.AddTradingArc(c1, c2);
  builder.AddInfluenceArc(p, c1);
  EXPECT_TRUE(builder.Build().status().IsFailedPrecondition());
}

TEST(TpiinBuilderTest, CyclicAntecedentRejected) {
  TpiinBuilder builder;
  NodeId c1 = builder.AddCompanyNode("C1");
  NodeId c2 = builder.AddCompanyNode("C2");
  builder.AddInfluenceArc(c1, c2);
  builder.AddInfluenceArc(c2, c1);
  Result<Tpiin> net = builder.Build();
  ASSERT_FALSE(net.ok());
  EXPECT_TRUE(net.status().IsFailedPrecondition());
  EXPECT_NE(net.status().message().find("cycle"), std::string::npos);
}

TEST(TpiinBuilderTest, CompanyInvestmentChainAllowed) {
  // Company -> company influence arcs (investment) are legal antecedent
  // structure.
  TpiinBuilder builder;
  NodeId c1 = builder.AddCompanyNode("C1");
  NodeId c2 = builder.AddCompanyNode("C2");
  NodeId c3 = builder.AddCompanyNode("C3");
  builder.AddInfluenceArc(c1, c2);
  builder.AddInfluenceArc(c2, c3);
  builder.AddTradingArc(c3, c1);
  Result<Tpiin> net = builder.Build();
  ASSERT_TRUE(net.ok());
  EXPECT_EQ(net->num_trading_arcs(), 1u);
}

TEST(TpiinBuilderTest, EdgeListEncoding) {
  TpiinBuilder builder;
  NodeId p = builder.AddPersonNode("P");
  NodeId c1 = builder.AddCompanyNode("C1");
  NodeId c2 = builder.AddCompanyNode("C2");
  builder.AddInfluenceArc(p, c1);
  builder.AddInfluenceArc(p, c2);
  builder.AddTradingArc(c1, c2);
  Result<Tpiin> net = builder.Build();
  ASSERT_TRUE(net.ok());
  auto rows = net->ToEdgeList();
  ASSERT_EQ(rows.size(), 3u);
  // Antecedent rows (blue, 1) precede trading rows (black, 0).
  EXPECT_EQ(rows[0][2], 1u);
  EXPECT_EQ(rows[1][2], 1u);
  EXPECT_EQ(rows[2][2], 0u);
  EXPECT_EQ(rows[2][0], c1);
  EXPECT_EQ(rows[2][1], c2);
}

TEST(TpiinBuilderTest, SyndicateMetadata) {
  TpiinBuilder builder;
  NodeId syn = builder.AddCompanyNode("{C1+C2}", {0, 1});
  builder.SetInternalInvestments(syn, {{0, 1}, {1, 0}});
  builder.AddIntraSyndicateTrade(syn, 0, 1);
  Result<Tpiin> net = builder.Build();
  ASSERT_TRUE(net.ok());
  EXPECT_TRUE(net->node(syn).IsSyndicate());
  EXPECT_EQ(net->node(syn).internal_investments.size(), 2u);
  ASSERT_EQ(net->intra_syndicate_trades().size(), 1u);
  EXPECT_EQ(net->intra_syndicate_trades()[0].seller, 0u);
}

TEST(NodeColorTest, Names) {
  EXPECT_EQ(NodeColorName(NodeColor::kPerson), "Person");
  EXPECT_EQ(NodeColorName(NodeColor::kCompany), "Company");
}

}  // namespace
}  // namespace tpiin

// Influence-weight semantics through the builder and the fusion
// pipeline (§7 future-work edge weights).

#include <gtest/gtest.h>

#include "common/timer.h"
#include "fusion/pipeline.h"
#include "fusion/tpiin.h"

namespace tpiin {
namespace {

// Prevents the timed loops from being optimized away.
volatile double benchmark_sink_ = 0;

TEST(WeightsTest, BuilderKeepsMaximumOnDuplicates) {
  TpiinBuilder builder;
  NodeId p = builder.AddPersonNode("P");
  NodeId c = builder.AddCompanyNode("C");
  builder.AddInfluenceArc(p, c, 0.3);
  builder.AddInfluenceArc(p, c, 0.9);  // Duplicate raises the weight.
  builder.AddInfluenceArc(p, c, 0.5);  // Weaker duplicate is ignored.
  auto net = builder.Build();
  ASSERT_TRUE(net.ok());
  ASSERT_EQ(net->graph().NumArcs(), 1u);
  EXPECT_DOUBLE_EQ(net->ArcWeight(0), 0.9);
}

TEST(WeightsTest, TradingArcsCarryUnitWeight) {
  TpiinBuilder builder;
  NodeId c1 = builder.AddCompanyNode("C1");
  NodeId c2 = builder.AddCompanyNode("C2");
  builder.AddTradingArc(c1, c2);
  auto net = builder.Build();
  ASSERT_TRUE(net.ok());
  EXPECT_DOUBLE_EQ(net->ArcWeight(0), 1.0);
}

TEST(WeightsTest, PipelineAssignsRoleBasedWeights) {
  RawDataset data;
  PersonId lp = data.AddPerson("LP", kRoleCeo);
  PersonId director = data.AddPerson("D", kRoleDirector);
  CompanyId c1 = data.AddCompany("C1");
  CompanyId c2 = data.AddCompany("C2");
  data.AddInfluence(lp, c1, InfluenceKind::kCeoOf, true);
  data.AddInfluence(lp, c2, InfluenceKind::kCeoOf, true);
  data.AddInfluence(director, c1, InfluenceKind::kDirectorOf, false);
  data.AddInvestment(c1, c2, 0.64);
  auto fused = BuildTpiin(data);
  ASSERT_TRUE(fused.ok());
  const Tpiin& net = fused->tpiin;

  auto weight_of = [&](NodeId src, NodeId dst) {
    for (ArcId id = 0; id < net.num_influence_arcs(); ++id) {
      const Arc& arc = net.graph().arc(id);
      if (arc.src == src && arc.dst == dst) return net.ArcWeight(id);
    }
    ADD_FAILURE() << "arc not found";
    return -1.0;
  };
  // Legal-person links are full strength; director links weaker;
  // investment arcs carry the share fraction.
  EXPECT_DOUBLE_EQ(
      weight_of(net.NodeOfPerson(lp), net.NodeOfCompany(c1)), 1.0);
  EXPECT_DOUBLE_EQ(
      weight_of(net.NodeOfPerson(director), net.NodeOfCompany(c1)), 0.6);
  EXPECT_DOUBLE_EQ(
      weight_of(net.NodeOfCompany(c1), net.NodeOfCompany(c2)), 0.64);
}

TEST(WeightsTest, LpLinkDominatesDirectorLinkOnSamePair) {
  RawDataset data;
  PersonId p = data.AddPerson("P", kRoleCeo);
  CompanyId c = data.AddCompany("C");
  data.AddInfluence(p, c, InfluenceKind::kDirectorOf, false);  // 0.6.
  data.AddInfluence(p, c, InfluenceKind::kCeoOf, true);        // 1.0.
  auto fused = BuildTpiin(data);
  ASSERT_TRUE(fused.ok());
  ASSERT_EQ(fused->tpiin.num_influence_arcs(), 1u);
  EXPECT_DOUBLE_EQ(fused->tpiin.ArcWeight(0), 1.0);
}

TEST(TimerTest, WallTimerMeasuresForwardTime) {
  WallTimer timer;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i * 0.5;
  benchmark_sink_ = sink;
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
  EXPECT_GE(timer.ElapsedMicros(), 0);
  double before = timer.ElapsedSeconds();
  timer.Restart();
  EXPECT_LE(timer.ElapsedSeconds(), before + 1.0);
}

TEST(TimerTest, ScopedTimerAccumulates) {
  double sink = 0;
  {
    ScopedTimer timer(&sink);
    int work = 0;
    for (int i = 0; i < 1000; ++i) work += i;
    benchmark_sink_ = work;
  }
  double first = sink;
  EXPECT_GE(first, 0.0);
  {
    ScopedTimer timer(&sink);
  }
  EXPECT_GE(sink, first);  // Accumulates, never resets.
}

}  // namespace
}  // namespace tpiin

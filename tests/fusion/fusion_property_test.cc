// Randomized end-to-end fusion properties: arbitrary valid RawDatasets
// (including investment cycles and dense interdependence) must fuse into
// TPIINs that honor the CNBM invariants, and the miner must stay
// baseline-exact through the fusion layer.

#include <set>
#include <unordered_set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/string_util.h"
#include "core/baseline.h"
#include "core/detector.h"
#include "fusion/pipeline.h"
#include "graph/topo.h"
#include "graph/union_find.h"

namespace tpiin {
namespace {

// A random valid dataset: every company gets one LP; extra directors,
// kinship/interlocking, investments (possibly cyclic) and trades are
// thrown in at random.
RawDataset RandomDataset(uint64_t seed) {
  Rng rng(seed);
  RawDataset data;
  const uint32_t num_persons = 3 + static_cast<uint32_t>(rng.UniformU64(8));
  const uint32_t num_companies =
      2 + static_cast<uint32_t>(rng.UniformU64(10));

  constexpr PersonRoles kLpRoles[] = {
      kRoleCeo, static_cast<PersonRoles>(kRoleCeo | kRoleDirector),
      kRoleChairman,
      static_cast<PersonRoles>(kRoleDirector | kRoleChairman)};
  for (uint32_t i = 0; i < num_persons; ++i) {
    data.AddPerson(StringPrintf("P%u", i),
                   kLpRoles[rng.UniformU64(std::size(kLpRoles))]);
  }
  for (uint32_t i = 0; i < num_companies; ++i) {
    CompanyId c = data.AddCompany(StringPrintf("C%u", i));
    data.AddInfluence(
        static_cast<PersonId>(rng.UniformU64(num_persons)), c,
        InfluenceKind::kCeoOf, /*is_legal_person=*/true);
  }
  // Extra director links (duplicates allowed; fusion dedups).
  uint64_t extra = rng.UniformU64(2 * num_companies);
  for (uint64_t k = 0; k < extra; ++k) {
    data.AddInfluence(static_cast<PersonId>(rng.UniformU64(num_persons)),
                      static_cast<CompanyId>(rng.UniformU64(num_companies)),
                      InfluenceKind::kDirectorOf, false);
  }
  // Interdependence.
  uint64_t links = rng.UniformU64(num_persons);
  for (uint64_t k = 0; k < links; ++k) {
    PersonId a = static_cast<PersonId>(rng.UniformU64(num_persons));
    PersonId b = static_cast<PersonId>(rng.UniformU64(num_persons));
    if (a == b) continue;
    data.AddInterdependence(a, b,
                            rng.Bernoulli(0.5)
                                ? InterdependenceKind::kKinship
                                : InterdependenceKind::kInterlocking);
  }
  // Investments — cycles allowed on purpose.
  uint64_t investments = rng.UniformU64(2 * num_companies);
  for (uint64_t k = 0; k < investments; ++k) {
    CompanyId a = static_cast<CompanyId>(rng.UniformU64(num_companies));
    CompanyId b = static_cast<CompanyId>(rng.UniformU64(num_companies));
    if (a == b) continue;
    data.AddInvestment(a, b, rng.UniformDouble(0.05, 1.0));
  }
  // Trades.
  uint64_t trades = 1 + rng.UniformU64(3 * num_companies);
  for (uint64_t k = 0; k < trades; ++k) {
    CompanyId a = static_cast<CompanyId>(rng.UniformU64(num_companies));
    CompanyId b = static_cast<CompanyId>(rng.UniformU64(num_companies));
    if (a == b) continue;
    data.AddTrade(a, b);
  }
  EXPECT_TRUE(data.Validate().ok());
  return data;
}

class FusionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FusionPropertyTest, CnbmInvariantsHold) {
  RawDataset data = RandomDataset(GetParam());
  auto fused = BuildTpiin(data);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  const Tpiin& net = fused->tpiin;

  // The antecedent layer is a DAG.
  EXPECT_TRUE(IsDag(net.graph(), IsInfluenceArc));

  // Arc layout: influence ids first, colors consistent, weights in (0,1].
  for (ArcId id = 0; id < net.graph().NumArcs(); ++id) {
    const Arc& arc = net.graph().arc(id);
    EXPECT_EQ(IsInfluenceArc(arc), id < net.num_influence_arcs());
    EXPECT_GT(net.ArcWeight(id), 0.0);
    EXPECT_LE(net.ArcWeight(id), 1.0);
    // Node-color rules: influence ends at Company; trading joins
    // Companies.
    EXPECT_EQ(net.node(arc.dst).color, NodeColor::kCompany);
    if (IsTradingArc(arc)) {
      EXPECT_EQ(net.node(arc.src).color, NodeColor::kCompany);
      EXPECT_NE(arc.src, arc.dst);
    }
  }

  // No duplicate arcs of one color.
  std::set<std::tuple<NodeId, NodeId, ArcColor>> arc_set;
  for (const Arc& arc : net.graph().arcs()) {
    EXPECT_TRUE(arc_set.insert({arc.src, arc.dst, arc.color}).second);
  }

  // Entity maps are total and color-correct.
  for (PersonId p = 0; p < data.persons().size(); ++p) {
    EXPECT_EQ(net.node(net.NodeOfPerson(p)).color, NodeColor::kPerson);
  }
  for (CompanyId c = 0; c < data.companies().size(); ++c) {
    EXPECT_EQ(net.node(net.NodeOfCompany(c)).color, NodeColor::kCompany);
  }
}

TEST_P(FusionPropertyTest, PersonSyndicatesMatchUnionFind) {
  RawDataset data = RandomDataset(GetParam() + 500);
  auto fused = BuildTpiin(data);
  ASSERT_TRUE(fused.ok());
  UnionFind uf(static_cast<NodeId>(data.persons().size()));
  for (const InterdependenceRecord& rec : data.interdependence()) {
    uf.Union(rec.person_a, rec.person_b);
  }
  for (PersonId a = 0; a < data.persons().size(); ++a) {
    for (PersonId b = a + 1; b < data.persons().size(); ++b) {
      EXPECT_EQ(uf.Connected(a, b), fused->tpiin.NodeOfPerson(a) ==
                                        fused->tpiin.NodeOfPerson(b));
    }
  }
}

TEST_P(FusionPropertyTest, CompanySyndicatesAreExactlyInvestmentSccs) {
  RawDataset data = RandomDataset(GetParam() + 1500);
  auto fused = BuildTpiin(data);
  ASSERT_TRUE(fused.ok());
  // Two companies share a node iff they are mutually reachable via
  // investment arcs.
  Digraph gi(static_cast<NodeId>(data.companies().size()));
  for (const InvestmentRecord& rec : data.investments()) {
    gi.AddArc(rec.investor, rec.investee, 0);
  }
  gi.BuildInAdjacency();
  for (CompanyId a = 0; a < data.companies().size(); ++a) {
    for (CompanyId b = a + 1; b < data.companies().size(); ++b) {
      bool same_node =
          fused->tpiin.NodeOfCompany(a) == fused->tpiin.NodeOfCompany(b);
      // Reuse the graph layer's SCC for the oracle.
      // (Checked cheaply: same node implies both in members list.)
      if (same_node) {
        const TpiinNode& node =
            fused->tpiin.node(fused->tpiin.NodeOfCompany(a));
        EXPECT_GE(node.company_members.size(), 2u);
      }
    }
  }
}

TEST_P(FusionPropertyTest, MinerStaysBaselineExactThroughFusion) {
  RawDataset data = RandomDataset(GetParam() + 2500);
  auto fused = BuildTpiin(data);
  ASSERT_TRUE(fused.ok());
  auto detection = DetectSuspiciousGroups(fused->tpiin);
  ASSERT_TRUE(detection.ok());
  BaselineOptions options;
  options.collect_groups = false;
  BaselineResult baseline = DetectBaseline(fused->tpiin, options);
  EXPECT_EQ(detection->num_simple, baseline.num_simple);
  EXPECT_EQ(detection->num_complex, baseline.num_complex);
  EXPECT_EQ(detection->suspicious_trades, baseline.suspicious_trades);
}

TEST_P(FusionPropertyTest, FusionIsDeterministic) {
  RawDataset data = RandomDataset(GetParam() + 3500);
  auto a = BuildTpiin(data);
  auto b = BuildTpiin(data);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->tpiin.ToEdgeList(), b->tpiin.ToEdgeList());
}

INSTANTIATE_TEST_SUITE_P(RandomDatasets, FusionPropertyTest,
                         ::testing::Range<uint64_t>(0, 40));

}  // namespace
}  // namespace tpiin

// Failpoint-driven fault injection through the parallel fusion pipeline:
// a layer task that fails mid-flight must surface as a Status on the
// caller, cancel its siblings, and leave the pool reusable.

#include <gtest/gtest.h>

#include "common/failpoint.h"
#include "datagen/worked_example.h"
#include "fusion/pipeline.h"

namespace tpiin {
namespace {

class FusionFailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { Failpoints::Clear(); }
  void TearDown() override { Failpoints::Clear(); }
};

TEST_F(FusionFailpointTest, LayerFaultSurfacesAsStatus) {
  RawDataset dataset = BuildWorkedExampleDataset();
  for (const char* site :
       {"fusion.layer.g1", "fusion.layer.g2", "fusion.layer.gi",
        "fusion.validate", "fusion.build"}) {
    ASSERT_TRUE(
        Failpoints::Configure(std::string(site) + ":error").ok());
    for (uint32_t threads : {1u, 4u}) {
      FusionOptions options;
      options.num_threads = threads;
      auto output = BuildTpiin(dataset, options);
      EXPECT_FALSE(output.ok()) << site << " threads=" << threads;
      EXPECT_TRUE(output.status().IsInternal()) << site;
    }
    Failpoints::Clear();
  }
}

TEST_F(FusionFailpointTest, PipelineRecoversAfterInjectedFault) {
  RawDataset dataset = BuildWorkedExampleDataset();
  ASSERT_TRUE(Failpoints::Configure("fusion.layer.g1:error").ok());
  FusionOptions options;
  options.num_threads = 4;
  EXPECT_FALSE(BuildTpiin(dataset, options).ok());
  Failpoints::Clear();

  // The same pool and pipeline must produce a clean result afterwards.
  auto output = BuildTpiin(dataset, options);
  ASSERT_TRUE(output.ok()) << output.status().ToString();
  EXPECT_GT(output->tpiin.NumNodes(), 0u);
}

TEST_F(FusionFailpointTest, NthHitFiresMidPipeline) {
  RawDataset dataset = BuildWorkedExampleDataset();
  // First build passes (the site's first hit is a no-op), second fails.
  ASSERT_TRUE(Failpoints::Configure("fusion.build:error@2").ok());
  FusionOptions options;
  options.num_threads = 2;
  EXPECT_TRUE(BuildTpiin(dataset, options).ok());
  EXPECT_FALSE(BuildTpiin(dataset, options).ok());
}

}  // namespace
}  // namespace tpiin

#include "fusion/layers.h"

#include <gtest/gtest.h>

namespace tpiin {
namespace {

RawDataset TwoCompanyDataset() {
  RawDataset data;
  PersonId p1 = data.AddPerson("L1", kRoleCeo);
  PersonId p2 = data.AddPerson("L2", kRoleCeo);
  CompanyId c1 = data.AddCompany("C1");
  CompanyId c2 = data.AddCompany("C2");
  data.AddInfluence(p1, c1, InfluenceKind::kCeoOf, true);
  data.AddInfluence(p2, c2, InfluenceKind::kCeoOf, true);
  return data;
}

TEST(LayersTest, InterdependenceDedupsPairsKeepingFirst) {
  RawDataset data = TwoCompanyDataset();
  data.AddInterdependence(0, 1, InterdependenceKind::kKinship);
  data.AddInterdependence(1, 0, InterdependenceKind::kInterlocking);
  Digraph g1 = BuildInterdependenceGraph(data);
  ASSERT_EQ(g1.NumArcs(), 1u);  // "If both exist, keep one" (§4.1).
  EXPECT_EQ(g1.arc(0).color, kLayerKinship);
  // Normalized direction: low id -> high id.
  EXPECT_EQ(g1.arc(0).src, 0u);
  EXPECT_EQ(g1.arc(0).dst, 1u);
}

TEST(LayersTest, InterdependenceKeepsDistinctPairs) {
  RawDataset data = TwoCompanyDataset();
  data.AddPerson("L3", kRoleCeo);
  data.AddInterdependence(0, 1, InterdependenceKind::kKinship);
  data.AddInterdependence(1, 2, InterdependenceKind::kInterlocking);
  Digraph g1 = BuildInterdependenceGraph(data);
  EXPECT_EQ(g1.NumArcs(), 2u);
}

TEST(LayersTest, InfluenceLayerIsBipartite) {
  RawDataset data = TwoCompanyDataset();
  data.AddInfluence(0, 1, InfluenceKind::kDirectorOf, false);
  data.AddInfluence(0, 1, InfluenceKind::kChairmanOf, false);  // Duplicate pair.
  Digraph g2 = BuildInfluenceLayerGraph(data);
  EXPECT_EQ(g2.NumNodes(), 4u);  // 2 persons + 2 companies.
  EXPECT_EQ(g2.NumArcs(), 3u);   // 2 LP links + 1 deduped director link.
  for (const Arc& arc : g2.arcs()) {
    EXPECT_LT(arc.src, 2u);   // Person side.
    EXPECT_GE(arc.dst, 2u);   // Company side.
    EXPECT_EQ(arc.color, kLayerInfluence);
  }
}

TEST(LayersTest, InvestmentGraphDedups) {
  RawDataset data = TwoCompanyDataset();
  data.AddInvestment(0, 1, 0.6);
  data.AddInvestment(0, 1, 0.7);
  data.AddInvestment(1, 0, 0.2);
  Digraph gi = BuildInvestmentGraph(data);
  EXPECT_EQ(gi.NumNodes(), 2u);
  EXPECT_EQ(gi.NumArcs(), 2u);  // 0->1 deduped; 1->0 kept (directional).
}

TEST(LayersTest, TradingGraphDedups) {
  RawDataset data = TwoCompanyDataset();
  data.AddTrade(0, 1);
  data.AddTrade(0, 1);
  data.AddTrade(1, 0);
  Digraph g4 = BuildTradingGraph(data);
  EXPECT_EQ(g4.NumArcs(), 2u);
}

}  // namespace
}  // namespace tpiin

// FusionOptions::num_threads must be a pure performance knob: the
// fused TPIIN — node ids, labels, membership lists, arc ids, colors,
// weights and the build statistics — is bit-identical to the serial
// pipeline at any thread count.

#include <gtest/gtest.h>

#include <algorithm>

#include "datagen/province.h"
#include "datagen/worked_example.h"
#include "fusion/pipeline.h"

namespace tpiin {
namespace {

void ExpectTpiinEqual(const Tpiin& expected, const Tpiin& actual) {
  ASSERT_EQ(actual.NumNodes(), expected.NumNodes());
  ASSERT_EQ(actual.NumArcs(), expected.NumArcs());
  EXPECT_EQ(actual.num_influence_arcs(), expected.num_influence_arcs());
  EXPECT_EQ(actual.ToEdgeList(), expected.ToEdgeList());
  for (NodeId v = 0; v < expected.NumNodes(); ++v) {
    const TpiinNode e = expected.node(v);
    const TpiinNode a = actual.node(v);
    EXPECT_EQ(a.color, e.color) << "node " << v;
    EXPECT_EQ(a.label, e.label) << "node " << v;
    EXPECT_TRUE(std::ranges::equal(a.person_members, e.person_members))
        << "node " << v;
    EXPECT_TRUE(std::ranges::equal(a.company_members, e.company_members))
        << "node " << v;
  }
  for (ArcId id = 0; id < expected.NumArcs(); ++id) {
    EXPECT_EQ(actual.ArcWeight(id), expected.ArcWeight(id))
        << "arc " << id;
  }
}

void ExpectStatsEqual(const FusionStats& expected,
                      const FusionStats& actual) {
  EXPECT_EQ(actual.g1_nodes, expected.g1_nodes);
  EXPECT_EQ(actual.g1_edges, expected.g1_edges);
  EXPECT_EQ(actual.person_syndicates, expected.person_syndicates);
  EXPECT_EQ(actual.persons_in_syndicates,
            expected.persons_in_syndicates);
  EXPECT_EQ(actual.influence_arcs, expected.influence_arcs);
  EXPECT_EQ(actual.investment_arcs, expected.investment_arcs);
  EXPECT_EQ(actual.investment_arcs_intra_scc,
            expected.investment_arcs_intra_scc);
  EXPECT_EQ(actual.company_syndicates, expected.company_syndicates);
  EXPECT_EQ(actual.companies_in_syndicates,
            expected.companies_in_syndicates);
  EXPECT_EQ(actual.antecedent_nodes, expected.antecedent_nodes);
  EXPECT_EQ(actual.antecedent_arcs, expected.antecedent_arcs);
  EXPECT_EQ(actual.trading_arcs, expected.trading_arcs);
  EXPECT_EQ(actual.intra_syndicate_trades,
            expected.intra_syndicate_trades);
}

class ParallelFusionTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ParallelFusionTest, WorkedExampleIsIdentical) {
  RawDataset dataset = BuildWorkedExampleDataset();
  auto serial = BuildTpiin(dataset);
  ASSERT_TRUE(serial.ok());

  FusionOptions options;
  options.num_threads = GetParam();
  auto parallel = BuildTpiin(dataset, options);
  ASSERT_TRUE(parallel.ok());
  ExpectTpiinEqual(serial->tpiin, parallel->tpiin);
  ExpectStatsEqual(serial->stats, parallel->stats);
}

TEST_P(ParallelFusionTest, RandomProvincesAreIdentical) {
  for (uint64_t seed : {1u, 7u, 23u}) {
    ProvinceConfig config = SmallProvinceConfig(150, seed);
    config.trading_probability = 0.02;
    auto province = GenerateProvince(config);
    ASSERT_TRUE(province.ok());

    auto serial = BuildTpiin(province->dataset);
    ASSERT_TRUE(serial.ok());
    FusionOptions options;
    options.num_threads = GetParam();
    auto parallel = BuildTpiin(province->dataset, options);
    ASSERT_TRUE(parallel.ok());
    ExpectTpiinEqual(serial->tpiin, parallel->tpiin);
    ExpectStatsEqual(serial->stats, parallel->stats);
  }
}

TEST_P(ParallelFusionTest, AboveParallelThresholdProvinceIsIdentical) {
  // Sized so the fused graph clears the parallel-engagement thresholds
  // (2^13 nodes / 2^14 arcs) and the concurrent contraction/SCC/WCC
  // drivers actually run, not just their serial fallbacks.
  ProvinceConfig config = SmallProvinceConfig(6000, 3);
  config.trading_probability = 0.001;
  auto province = GenerateProvince(config);
  ASSERT_TRUE(province.ok());

  auto serial = BuildTpiin(province->dataset);
  ASSERT_TRUE(serial.ok());
  FusionOptions options;
  options.num_threads = GetParam();
  auto parallel = BuildTpiin(province->dataset, options);
  ASSERT_TRUE(parallel.ok());
  ExpectTpiinEqual(serial->tpiin, parallel->tpiin);
  ExpectStatsEqual(serial->stats, parallel->stats);
}

// 0 = auto-detect; must behave like any explicit count.
INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelFusionTest,
                         ::testing::Values(0u, 2u, 4u, 8u));

TEST(ParallelFusionTest, InvalidDatasetStillRejected) {
  RawDataset dataset = BuildWorkedExampleDataset();
  // Out-of-range company in a trade record must fail identically with
  // the concurrent validate/freeze passes.
  std::vector<TradeRecord> trades = dataset.trades();
  trades.push_back(TradeRecord{9999, 0});
  dataset.SetTrades(std::move(trades));
  FusionOptions options;
  options.num_threads = 8;
  auto result = BuildTpiin(dataset, options);
  EXPECT_FALSE(result.ok());
}

}  // namespace
}  // namespace tpiin

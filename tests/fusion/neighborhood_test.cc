#include "fusion/neighborhood.h"

#include <set>

#include <gtest/gtest.h>

#include "core/detector.h"
#include "datagen/worked_example.h"

namespace tpiin {
namespace {

class NeighborhoodTest : public ::testing::Test {
 protected:
  NeighborhoodTest() : net_(BuildWorkedExampleTpiin()) {}

  NodeId NodeByLabel(const Tpiin& net, const std::string& label) const {
    for (NodeId v = 0; v < net.NumNodes(); ++v) {
      if (net.Label(v) == label) return v;
    }
    return kInvalidNode;
  }

  std::set<std::string> Labels(const Tpiin& net) const {
    std::set<std::string> out;
    for (NodeId v = 0; v < net.NumNodes(); ++v) {
      out.insert(std::string(net.Label(v)));
    }
    return out;
  }

  Tpiin net_;
};

TEST_F(NeighborhoodTest, DepthOneInfluenceNeighborhood) {
  NodeId c5 = NodeByLabel(net_, "C5");
  EgoOptions options;
  options.depth = 1;
  auto ego = ExtractEgoNetwork(net_, c5, options);
  ASSERT_TRUE(ego.ok()) << ego.status().ToString();
  // C5's influence neighbors: L3, B1 (influencers) and C2 (investor).
  EXPECT_EQ(Labels(*ego), (std::set<std::string>{"C5", "L3", "B1", "C2"}));
}

TEST_F(NeighborhoodTest, DepthZeroIsJustTheCenter) {
  NodeId c5 = NodeByLabel(net_, "C5");
  EgoOptions options;
  options.depth = 0;
  auto ego = ExtractEgoNetwork(net_, c5, options);
  ASSERT_TRUE(ego.ok());
  EXPECT_EQ(ego->NumNodes(), 1u);
  EXPECT_EQ(ego->Label(0), "C5");
  EXPECT_EQ(ego->graph().NumArcs(), 0u);
}

TEST_F(NeighborhoodTest, TradingArcsBetweenKeptNodesAreRetained) {
  // Depth-1 around C5 keeps C2; the original has no C2<->C5 trading
  // arc, but the influence arc C2 -> C5 must be there with C5's other
  // incident influence arcs.
  NodeId c5 = NodeByLabel(net_, "C5");
  EgoOptions options;
  options.depth = 1;
  auto ego = ExtractEgoNetwork(net_, c5, options);
  ASSERT_TRUE(ego.ok());
  EXPECT_EQ(ego->num_influence_arcs(), 3u);  // L3->C5, B1->C5, C2->C5.
  EXPECT_EQ(ego->num_trading_arcs(), 0u);
}

TEST_F(NeighborhoodTest, FollowTradingExpandsToCounterparties) {
  NodeId c5 = NodeByLabel(net_, "C5");
  EgoOptions options;
  options.depth = 1;
  options.follow_trading = true;
  auto ego = ExtractEgoNetwork(net_, c5, options);
  ASSERT_TRUE(ego.ok());
  std::set<std::string> labels = Labels(*ego);
  // Trading neighbors C3 (incoming), C6, C7 (outgoing) join.
  EXPECT_TRUE(labels.count("C6"));
  EXPECT_TRUE(labels.count("C7"));
  EXPECT_TRUE(labels.count("C3"));
  EXPECT_GT(ego->num_trading_arcs(), 0u);
}

TEST_F(NeighborhoodTest, WholeComponentAtLargeDepth) {
  NodeId c5 = NodeByLabel(net_, "C5");
  EgoOptions options;
  options.depth = 100;
  options.follow_trading = true;
  auto ego = ExtractEgoNetwork(net_, c5, options);
  ASSERT_TRUE(ego.ok());
  EXPECT_EQ(ego->NumNodes(), net_.NumNodes());
  EXPECT_EQ(ego->graph().NumArcs(), net_.graph().NumArcs());
}

TEST_F(NeighborhoodTest, EgoNetworkIsMinableAndConsistent) {
  // Mining the full-depth ego network reproduces the original results.
  NodeId c5 = NodeByLabel(net_, "C5");
  EgoOptions options;
  options.depth = 100;
  options.follow_trading = true;
  auto ego = ExtractEgoNetwork(net_, c5, options);
  ASSERT_TRUE(ego.ok());
  auto original = DetectSuspiciousGroups(net_);
  auto from_ego = DetectSuspiciousGroups(*ego);
  ASSERT_TRUE(original.ok() && from_ego.ok());
  EXPECT_EQ(from_ego->num_simple, original->num_simple);
  EXPECT_EQ(from_ego->num_complex, original->num_complex);
}

TEST_F(NeighborhoodTest, WeightsSurviveExtraction) {
  TpiinBuilder builder;
  NodeId p = builder.AddPersonNode("P");
  NodeId c1 = builder.AddCompanyNode("C1");
  builder.AddInfluenceArc(p, c1, 0.42);
  auto net = builder.Build();
  ASSERT_TRUE(net.ok());
  auto ego = ExtractEgoNetwork(*net, p);
  ASSERT_TRUE(ego.ok());
  ASSERT_EQ(ego->graph().NumArcs(), 1u);
  EXPECT_DOUBLE_EQ(ego->ArcWeight(0), 0.42);
}

TEST_F(NeighborhoodTest, OutOfRangeCenterRejected) {
  auto ego = ExtractEgoNetwork(net_, 9999);
  EXPECT_TRUE(ego.status().IsInvalidArgument());
}

}  // namespace
}  // namespace tpiin

#include "fusion/pipeline.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "datagen/worked_example.h"
#include "graph/topo.h"

namespace tpiin {
namespace {

// Base dataset: three persons, three companies, one LP each.
RawDataset BaseDataset() {
  RawDataset data;
  for (int i = 0; i < 3; ++i) {
    data.AddPerson(StringPrintf("L%d", i + 1), kRoleCeo);
  }
  for (int i = 0; i < 3; ++i) {
    CompanyId c = data.AddCompany(StringPrintf("C%d", i + 1));
    data.AddInfluence(i, c, InfluenceKind::kCeoOf, true);
  }
  return data;
}

TEST(PipelineTest, ValidatesDatasetByDefault) {
  RawDataset data;  // No companies' LP -> invalid once a company exists.
  data.AddCompany("C1");
  EXPECT_TRUE(BuildTpiin(data).status().IsFailedPrecondition());
}

TEST(PipelineTest, ValidationCanBeSkipped) {
  // The same structurally-sound graph passes when the caller vouches.
  RawDataset data = BaseDataset();
  FusionOptions options;
  options.validate_dataset = false;
  EXPECT_TRUE(BuildTpiin(data, options).ok());
}

TEST(PipelineTest, PersonContractionMergesInterdependenceComponents) {
  RawDataset data = BaseDataset();
  data.AddInterdependence(0, 1, InterdependenceKind::kKinship);
  data.AddInterdependence(1, 2, InterdependenceKind::kInterlocking);
  auto fused = BuildTpiin(data);
  ASSERT_TRUE(fused.ok());
  // All three persons merged into one syndicate node.
  EXPECT_EQ(fused->stats.person_syndicates, 1u);
  EXPECT_EQ(fused->stats.persons_in_syndicates, 3u);
  NodeId syn = fused->tpiin.NodeOfPerson(0);
  EXPECT_EQ(fused->tpiin.NodeOfPerson(1), syn);
  EXPECT_EQ(fused->tpiin.NodeOfPerson(2), syn);
  EXPECT_TRUE(fused->tpiin.node(syn).IsSyndicate());
  EXPECT_EQ(fused->tpiin.node(syn).person_members.size(), 3u);
  // Syndicate label is the brace-joined member list.
  EXPECT_EQ(fused->tpiin.Label(syn), "{L1+L2+L3}");
}

TEST(PipelineTest, InfluenceArcsDedupAfterContraction) {
  RawDataset data = BaseDataset();
  data.AddInterdependence(0, 1, InterdependenceKind::kKinship);
  // After merging L1 and L2, their LP links to C1 and C2 stay distinct
  // arcs, but two director links to the same company collapse.
  data.AddInfluence(0, 2, InfluenceKind::kDirectorOf, false);
  data.AddInfluence(1, 2, InfluenceKind::kDirectorOf, false);
  auto fused = BuildTpiin(data);
  ASSERT_TRUE(fused.ok());
  // 3 LP links + 1 deduped director link.
  EXPECT_EQ(fused->stats.influence_arcs, 4u);
}

TEST(PipelineTest, InvestmentCycleContractsIntoCompanySyndicate) {
  RawDataset data = BaseDataset();
  data.AddInvestment(0, 1, 0.6);
  data.AddInvestment(1, 2, 0.6);
  data.AddInvestment(2, 0, 0.6);
  auto fused = BuildTpiin(data);
  ASSERT_TRUE(fused.ok());
  EXPECT_EQ(fused->stats.company_syndicates, 1u);
  EXPECT_EQ(fused->stats.companies_in_syndicates, 3u);
  EXPECT_EQ(fused->stats.investment_arcs_intra_scc, 3u);
  NodeId syn = fused->tpiin.NodeOfCompany(0);
  EXPECT_EQ(fused->tpiin.NodeOfCompany(1), syn);
  EXPECT_EQ(fused->tpiin.NodeOfCompany(2), syn);
  EXPECT_EQ(fused->tpiin.node(syn).internal_investments.size(), 3u);
}

TEST(PipelineTest, IntraSyndicateTradeRecorded) {
  RawDataset data = BaseDataset();
  data.AddInvestment(0, 1, 0.6);
  data.AddInvestment(1, 0, 0.6);
  data.AddTrade(0, 1);  // Inside the future syndicate.
  data.AddTrade(0, 2);  // Regular arc.
  auto fused = BuildTpiin(data);
  ASSERT_TRUE(fused.ok());
  EXPECT_EQ(fused->stats.intra_syndicate_trades, 1u);
  EXPECT_EQ(fused->stats.trading_arcs, 1u);
  ASSERT_EQ(fused->tpiin.intra_syndicate_trades().size(), 1u);
  EXPECT_EQ(fused->tpiin.intra_syndicate_trades()[0].seller, 0u);
  EXPECT_EQ(fused->tpiin.intra_syndicate_trades()[0].buyer, 1u);
}

TEST(PipelineTest, AntecedentIsAlwaysDag) {
  RawDataset data = BaseDataset();
  data.AddInvestment(0, 1, 0.6);
  data.AddInvestment(1, 2, 0.6);
  data.AddInvestment(2, 0, 0.6);  // Cycle contracted away.
  data.AddInvestment(1, 0, 0.6);
  auto fused = BuildTpiin(data);
  ASSERT_TRUE(fused.ok());
  EXPECT_TRUE(IsDag(fused->tpiin.graph(), IsInfluenceArc));
}

TEST(PipelineTest, TradingArcsDedupAndMapThroughContraction) {
  RawDataset data = BaseDataset();
  data.AddTrade(0, 1);
  data.AddTrade(0, 1);  // Duplicate record.
  data.AddTrade(1, 0);  // Opposite direction is distinct.
  auto fused = BuildTpiin(data);
  ASSERT_TRUE(fused.ok());
  EXPECT_EQ(fused->stats.trading_arcs, 2u);
}

TEST(PipelineTest, WorkedExampleMatchesDirectConstruction) {
  // Fusing the Fig. 7 dataset must produce a network isomorphic to the
  // directly-built Fig. 8 TPIIN: same counts, same labels modulo the
  // syndicate naming.
  auto fused = BuildTpiin(BuildWorkedExampleDataset());
  ASSERT_TRUE(fused.ok());
  Tpiin direct = BuildWorkedExampleTpiin();
  EXPECT_EQ(fused->tpiin.NumNodes(), direct.NumNodes());
  EXPECT_EQ(fused->tpiin.num_influence_arcs(), direct.num_influence_arcs());
  EXPECT_EQ(fused->tpiin.num_trading_arcs(), direct.num_trading_arcs());
  std::set<std::string> labels;
  for (NodeId v = 0; v < fused->tpiin.NumNodes(); ++v) {
    labels.insert(std::string(fused->tpiin.Label(v)));
  }
  EXPECT_TRUE(labels.count("{L6+LB}"));
  EXPECT_TRUE(labels.count("{B5+B6}"));
  EXPECT_TRUE(labels.count("C5"));
}

TEST(PipelineTest, StatsToStringMentionsEveryStage) {
  auto fused = BuildTpiin(BaseDataset());
  ASSERT_TRUE(fused.ok());
  std::string text = fused->stats.ToString();
  for (const char* needle : {"G1", "G2", "GI", "Antecedent", "Trading"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
}

}  // namespace
}  // namespace tpiin

#include "graph/scc.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/traversal.h"

namespace tpiin {
namespace {

TEST(SccTest, DagHasOnlyTrivialComponents) {
  Digraph g(4);
  g.AddArc(0, 1, 0);
  g.AddArc(1, 2, 0);
  g.AddArc(0, 3, 0);
  SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 4u);
  EXPECT_TRUE(scc.nontrivial_components.empty());
}

TEST(SccTest, SimpleCycle) {
  Digraph g(4);
  g.AddArc(0, 1, 0);
  g.AddArc(1, 2, 0);
  g.AddArc(2, 0, 0);
  g.AddArc(2, 3, 0);
  SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 2u);
  ASSERT_EQ(scc.nontrivial_components.size(), 1u);
  NodeId comp = scc.nontrivial_components[0];
  std::set<NodeId> members(scc.members[comp].begin(),
                           scc.members[comp].end());
  EXPECT_EQ(members, (std::set<NodeId>{0, 1, 2}));
  EXPECT_NE(scc.component_of[3], comp);
}

TEST(SccTest, SelfLoopIsNontrivial) {
  Digraph g(2);
  g.AddArc(0, 0, 0);
  SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 2u);
  ASSERT_EQ(scc.nontrivial_components.size(), 1u);
  EXPECT_EQ(scc.members[scc.nontrivial_components[0]],
            std::vector<NodeId>{0});
}

TEST(SccTest, TwoDisjointCycles) {
  Digraph g(6);
  g.AddArc(0, 1, 0);
  g.AddArc(1, 0, 0);
  g.AddArc(2, 3, 0);
  g.AddArc(3, 4, 0);
  g.AddArc(4, 2, 0);
  SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 3u);  // {0,1}, {2,3,4}, {5}.
  EXPECT_EQ(scc.nontrivial_components.size(), 2u);
}

TEST(SccTest, ReverseTopologicalComponentIds) {
  // Tarjan emits components in reverse topological order: if comp(u) has
  // an arc to comp(v) (u, v in different components), then
  // component_of[u] > component_of[v].
  Digraph g(5);
  g.AddArc(0, 1, 0);
  g.AddArc(1, 2, 0);
  g.AddArc(2, 1, 0);  // {1,2} cycle.
  g.AddArc(2, 3, 0);
  g.AddArc(3, 4, 0);
  SccResult scc = StronglyConnectedComponents(g);
  for (const Arc& arc : g.arcs()) {
    if (scc.component_of[arc.src] != scc.component_of[arc.dst]) {
      EXPECT_GT(scc.component_of[arc.src], scc.component_of[arc.dst]);
    }
  }
}

TEST(SccTest, ArcFilterRestrictsDecomposition) {
  Digraph g(3);
  g.AddArc(0, 1, /*color=*/1);
  g.AddArc(1, 0, /*color=*/2);  // Filtered out: no cycle remains.
  SccResult all = StronglyConnectedComponents(g);
  EXPECT_EQ(all.nontrivial_components.size(), 1u);
  SccResult filtered = StronglyConnectedComponents(
      g, [](const Arc& arc) { return arc.color == 1; });
  EXPECT_TRUE(filtered.nontrivial_components.empty());
}

TEST(SccTest, DeepChainDoesNotOverflowStack) {
  constexpr NodeId kN = 200000;
  Digraph g(kN);
  for (NodeId i = 1; i < kN; ++i) g.AddArc(i - 1, i, 0);
  g.AddArc(kN - 1, 0, 0);  // One giant cycle.
  SccResult scc = StronglyConnectedComponents(g);
  EXPECT_EQ(scc.num_components, 1u);
  EXPECT_EQ(scc.members[0].size(), kN);
}

// Property sweep: on random digraphs, SCC membership must agree with
// mutual reachability.
class SccPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SccPropertyTest, AgreesWithMutualReachability) {
  Rng rng(GetParam());
  const NodeId n = 2 + static_cast<NodeId>(rng.UniformU64(28));
  Digraph g(n);
  const uint32_t arcs = static_cast<uint32_t>(rng.UniformU64(3 * n));
  for (uint32_t i = 0; i < arcs; ++i) {
    g.AddArc(static_cast<NodeId>(rng.UniformU64(n)),
             static_cast<NodeId>(rng.UniformU64(n)), 0);
  }
  SccResult scc = StronglyConnectedComponents(g);

  std::vector<std::vector<bool>> reach;
  reach.reserve(n);
  for (NodeId v = 0; v < n; ++v) reach.push_back(ReachableFrom(g, v));
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = 0; v < n; ++v) {
      bool mutual = reach[u][v] && reach[v][u];
      EXPECT_EQ(mutual, scc.component_of[u] == scc.component_of[v])
          << "nodes " << u << "," << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, SccPropertyTest,
                         ::testing::Range<uint64_t>(0, 25));

}  // namespace
}  // namespace tpiin

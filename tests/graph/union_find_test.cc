#include "graph/union_find.h"

#include <gtest/gtest.h>

namespace tpiin {
namespace {

TEST(UnionFindTest, InitiallyAllSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.NumSets(), 5u);
  for (NodeId i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.SizeOf(i), 1u);
  }
}

TEST(UnionFindTest, UnionMergesAndReportsNovelty) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));  // Already merged.
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_EQ(uf.NumSets(), 3u);
  EXPECT_EQ(uf.SizeOf(0), 2u);
}

TEST(UnionFindTest, TransitiveConnectivity) {
  UnionFind uf(6);
  uf.Union(0, 1);
  uf.Union(2, 3);
  uf.Union(1, 2);
  EXPECT_TRUE(uf.Connected(0, 3));
  EXPECT_EQ(uf.SizeOf(3), 4u);
  EXPECT_EQ(uf.NumSets(), 3u);  // {0,1,2,3}, {4}, {5}.
}

TEST(UnionFindTest, DenseComponentIdsAreDenseAndConsistent) {
  UnionFind uf(6);
  uf.Union(4, 5);
  uf.Union(0, 2);
  std::vector<NodeId> ids = uf.DenseComponentIds();
  ASSERT_EQ(ids.size(), 6u);
  // Dense: ids cover [0, NumSets()).
  for (NodeId id : ids) EXPECT_LT(id, uf.NumSets());
  EXPECT_EQ(ids[0], ids[2]);
  EXPECT_EQ(ids[4], ids[5]);
  EXPECT_NE(ids[0], ids[1]);
  EXPECT_NE(ids[0], ids[4]);
  // First-appearance ordering: node 0's component gets id 0.
  EXPECT_EQ(ids[0], 0u);
  EXPECT_EQ(ids[1], 1u);
}

TEST(UnionFindTest, LargeChainCollapsesToOneSet) {
  constexpr NodeId kN = 10000;
  UnionFind uf(kN);
  for (NodeId i = 1; i < kN; ++i) uf.Union(i - 1, i);
  EXPECT_EQ(uf.NumSets(), 1u);
  EXPECT_EQ(uf.SizeOf(0), kN);
  EXPECT_TRUE(uf.Connected(0, kN - 1));
}

}  // namespace
}  // namespace tpiin

#include "graph/connected.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/traversal.h"

namespace tpiin {
namespace {

TEST(WccTest, IsolatedNodesAreSingletons) {
  Digraph g(3);
  WccResult wcc = WeaklyConnectedComponents(g);
  EXPECT_EQ(wcc.num_components, 3u);
  for (NodeId v = 0; v < 3; ++v) {
    EXPECT_EQ(wcc.members[wcc.component_of[v]], std::vector<NodeId>{v});
  }
}

TEST(WccTest, DirectionIsIgnored) {
  Digraph g(4);
  g.AddArc(1, 0, 0);
  g.AddArc(1, 2, 0);
  WccResult wcc = WeaklyConnectedComponents(g);
  EXPECT_EQ(wcc.num_components, 2u);  // {0,1,2}, {3}.
  EXPECT_EQ(wcc.component_of[0], wcc.component_of[2]);
  EXPECT_NE(wcc.component_of[0], wcc.component_of[3]);
}

TEST(WccTest, ArcFilterSplitsComponents) {
  Digraph g(4);
  g.AddArc(0, 1, 1);
  g.AddArc(1, 2, 2);  // Filtered out below.
  g.AddArc(2, 3, 1);
  WccResult all = WeaklyConnectedComponents(g);
  EXPECT_EQ(all.num_components, 1u);
  WccResult filtered = WeaklyConnectedComponents(
      g, [](const Arc& arc) { return arc.color == 1; });
  EXPECT_EQ(filtered.num_components, 2u);
  EXPECT_EQ(filtered.component_of[0], filtered.component_of[1]);
  EXPECT_EQ(filtered.component_of[2], filtered.component_of[3]);
  EXPECT_NE(filtered.component_of[1], filtered.component_of[2]);
}

TEST(WccTest, MembersAreSortedAndPartitionNodes) {
  Digraph g(6);
  g.AddArc(5, 0, 0);
  g.AddArc(0, 3, 0);
  WccResult wcc = WeaklyConnectedComponents(g);
  size_t total = 0;
  for (const std::vector<NodeId>& members : wcc.members) {
    EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
    total += members.size();
  }
  EXPECT_EQ(total, 6u);
}

// The union-find implementation and the paper's DFS findsubgraph() must
// produce the same partition on random graphs.
class WccEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WccEquivalenceTest, UnionFindMatchesDfs) {
  Rng rng(GetParam());
  const NodeId n = 1 + static_cast<NodeId>(rng.UniformU64(40));
  Digraph g(n);
  const uint32_t arcs = static_cast<uint32_t>(rng.UniformU64(2 * n));
  for (uint32_t i = 0; i < arcs; ++i) {
    g.AddArc(static_cast<NodeId>(rng.UniformU64(n)),
             static_cast<NodeId>(rng.UniformU64(n)),
             static_cast<ArcColor>(rng.UniformU64(2)));
  }
  ArcFilter filter = [](const Arc& arc) { return arc.color == 0; };
  WccResult a = WeaklyConnectedComponents(g, filter);
  WccResult b = FindSubgraphsDfs(g, filter);
  ASSERT_EQ(a.num_components, b.num_components);
  // Same partition up to component relabeling.
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      EXPECT_EQ(a.component_of[u] == a.component_of[v],
                b.component_of[u] == b.component_of[v]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, WccEquivalenceTest,
                         ::testing::Range<uint64_t>(100, 120));

}  // namespace
}  // namespace tpiin

// FrozenGraph: the immutable CSR view with color-partitioned adjacency.
// The contract under test: every Digraph arc appears exactly once in the
// out CSR and once in the in CSR, each node's run is partitioned with
// the influence class first, and relative order within a color class
// follows Digraph insertion order.

#include <vector>

#include <gtest/gtest.h>

#include "graph/digraph.h"
#include "graph/frozen.h"

namespace tpiin {
namespace {

constexpr ArcColor kTrading = 0;
constexpr ArcColor kInfluence = 1;

TEST(FrozenGraphTest, EmptyGraph) {
  Digraph g;
  FrozenGraph fg(g, kInfluence);
  EXPECT_EQ(fg.NumNodes(), 0u);
  EXPECT_EQ(fg.NumArcs(), 0u);
  EXPECT_EQ(fg.NumInfluenceArcs(), 0u);
}

TEST(FrozenGraphTest, SingletonNodeHasEmptySpans) {
  Digraph g;
  g.AddNodes(1);
  FrozenGraph fg(g, kInfluence);
  EXPECT_EQ(fg.NumNodes(), 1u);
  EXPECT_EQ(fg.NumArcs(), 0u);
  EXPECT_TRUE(fg.Out(0).empty());
  EXPECT_TRUE(fg.In(0).empty());
  EXPECT_TRUE(fg.InfluenceOut(0).empty());
  EXPECT_TRUE(fg.TradingOut(0).empty());
  EXPECT_TRUE(fg.InfluenceIn(0).empty());
  EXPECT_TRUE(fg.TradingIn(0).empty());
  EXPECT_EQ(fg.OutDegree(0), 0u);
  EXPECT_EQ(fg.InDegree(0), 0u);
}

TEST(FrozenGraphTest, DefaultConstructedIsEmpty) {
  FrozenGraph fg;
  EXPECT_EQ(fg.NumNodes(), 0u);
  EXPECT_EQ(fg.NumArcs(), 0u);
}

// Arcs inserted with the colors interleaved still come out partitioned:
// influence run first, then trading, each in insertion order.
TEST(FrozenGraphTest, PartitionsInterleavedColors) {
  Digraph g;
  g.AddNodes(5);
  ArcId t0 = g.AddArc(0, 1, kTrading);
  ArcId i0 = g.AddArc(0, 2, kInfluence);
  ArcId t1 = g.AddArc(0, 3, kTrading);
  ArcId i1 = g.AddArc(0, 4, kInfluence);
  FrozenGraph fg(g, kInfluence);

  EXPECT_EQ(fg.NumInfluenceArcs(), 2u);
  ASSERT_EQ(fg.OutDegree(0), 4u);
  ASSERT_EQ(fg.InfluenceOutDegree(0), 2u);
  ASSERT_EQ(fg.TradingOutDegree(0), 2u);

  AdjSpan influence = fg.InfluenceOut(0);
  EXPECT_EQ(std::vector<NodeId>(influence.nodes.begin(),
                                influence.nodes.end()),
            (std::vector<NodeId>{2, 4}));
  EXPECT_EQ(std::vector<ArcId>(influence.arcs.begin(), influence.arcs.end()),
            (std::vector<ArcId>{i0, i1}));

  AdjSpan trading = fg.TradingOut(0);
  EXPECT_EQ(std::vector<NodeId>(trading.nodes.begin(), trading.nodes.end()),
            (std::vector<NodeId>{1, 3}));
  EXPECT_EQ(std::vector<ArcId>(trading.arcs.begin(), trading.arcs.end()),
            (std::vector<ArcId>{t0, t1}));

  // The full run is the concatenation: influence first.
  AdjSpan all = fg.Out(0);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_EQ(all.nodes[0], 2u);
  EXPECT_EQ(all.nodes[1], 4u);
  EXPECT_EQ(all.nodes[2], 1u);
  EXPECT_EQ(all.nodes[3], 3u);
}

TEST(FrozenGraphTest, PartitionBoundariesAtAllInfluenceAndAllTrading) {
  Digraph g;
  g.AddNodes(3);
  g.AddArc(0, 1, kInfluence);
  g.AddArc(0, 2, kInfluence);
  g.AddArc(1, 2, kTrading);
  FrozenGraph fg(g, kInfluence);

  // Node 0: all influence — trading span empty, at the run's end.
  EXPECT_EQ(fg.InfluenceOutDegree(0), 2u);
  EXPECT_EQ(fg.TradingOutDegree(0), 0u);
  EXPECT_TRUE(fg.TradingOut(0).empty());
  // Node 1: all trading — influence span empty, at the run's start.
  EXPECT_EQ(fg.InfluenceOutDegree(1), 0u);
  EXPECT_EQ(fg.TradingOutDegree(1), 1u);
  EXPECT_TRUE(fg.InfluenceOut(1).empty());
  // Node 2: sink; in-CSR partitioned the same way.
  EXPECT_EQ(fg.InfluenceInDegree(2), 1u);
  EXPECT_EQ(fg.TradingInDegree(2), 1u);
  EXPECT_EQ(fg.InfluenceIn(2).nodes[0], 0u);
  EXPECT_EQ(fg.TradingIn(2).nodes[0], 1u);
}

// Every arc of the Digraph appears exactly once in the out CSR and once
// in the in CSR, with matching endpoints.
TEST(FrozenGraphTest, InOutSymmetry) {
  Digraph g;
  g.AddNodes(8);
  g.AddArc(0, 3, kInfluence);
  g.AddArc(3, 4, kInfluence);
  g.AddArc(1, 3, kInfluence);
  g.AddArc(4, 5, kTrading);
  g.AddArc(3, 5, kTrading);
  g.AddArc(5, 3, kTrading);  // Back-arc: both directions between 3 and 5.
  g.AddArc(2, 2, kInfluence);  // Self-loop.
  FrozenGraph fg(g, kInfluence);
  ASSERT_EQ(fg.NumArcs(), g.NumArcs());

  std::vector<uint8_t> seen_out(g.NumArcs(), 0);
  std::vector<uint8_t> seen_in(g.NumArcs(), 0);
  for (NodeId v = 0; v < fg.NumNodes(); ++v) {
    AdjSpan out = fg.Out(v);
    for (size_t i = 0; i < out.size(); ++i) {
      const Arc& arc = g.arc(out.arcs[i]);
      EXPECT_EQ(arc.src, v);
      EXPECT_EQ(arc.dst, out.nodes[i]);
      EXPECT_EQ(++seen_out[out.arcs[i]], 1);
    }
    AdjSpan in = fg.In(v);
    for (size_t i = 0; i < in.size(); ++i) {
      const Arc& arc = g.arc(in.arcs[i]);
      EXPECT_EQ(arc.dst, v);
      EXPECT_EQ(arc.src, in.nodes[i]);
      EXPECT_EQ(++seen_in[in.arcs[i]], 1);
    }
    // Degree accessors agree with the spans.
    EXPECT_EQ(fg.OutDegree(v), out.size());
    EXPECT_EQ(fg.InDegree(v), in.size());
    EXPECT_EQ(fg.InfluenceOutDegree(v) + fg.TradingOutDegree(v),
              fg.OutDegree(v));
    EXPECT_EQ(fg.InfluenceInDegree(v) + fg.TradingInDegree(v),
              fg.InDegree(v));
  }
  for (ArcId id = 0; id < g.NumArcs(); ++id) {
    EXPECT_EQ(seen_out[id], 1) << "arc " << id;
    EXPECT_EQ(seen_in[id], 1) << "arc " << id;
  }
}

TEST(FrozenGraphTest, OutClassSelectorsMatchNamedSpans) {
  Digraph g;
  g.AddNodes(3);
  g.AddArc(0, 1, kInfluence);
  g.AddArc(0, 2, kTrading);
  FrozenGraph fg(g, kInfluence);
  EXPECT_EQ(fg.OutClass(0, FrozenArcClass::kAll).size(), 2u);
  EXPECT_EQ(fg.OutClass(0, FrozenArcClass::kInfluence).nodes[0], 1u);
  EXPECT_EQ(fg.OutClass(0, FrozenArcClass::kTrading).nodes[0], 2u);
  EXPECT_EQ(fg.InClass(1, FrozenArcClass::kInfluence).size(), 1u);
  EXPECT_EQ(fg.InClass(1, FrozenArcClass::kTrading).size(), 0u);
  EXPECT_EQ(fg.InClass(2, FrozenArcClass::kTrading).nodes[0], 0u);
}

// Matches Digraph-derived ground truth on an arbitrary mixed graph.
TEST(FrozenGraphTest, AgreesWithDigraphAdjacency) {
  Digraph g;
  g.AddNodes(6);
  for (NodeId v = 0; v < 6; ++v) {
    for (NodeId w = 0; w < 6; ++w) {
      if ((v * 7 + w * 3) % 4 == 0 && v != w) {
        g.AddArc(v, w, (v + w) % 2 == 0 ? kInfluence : kTrading);
      }
    }
  }
  FrozenGraph fg(g, kInfluence);
  for (NodeId v = 0; v < 6; ++v) {
    std::vector<ArcId> expected(g.OutArcs(v).begin(), g.OutArcs(v).end());
    // Stable-partition the expected list: influence first.
    std::vector<ArcId> partitioned;
    for (ArcId id : expected) {
      if (g.arc(id).color == kInfluence) partitioned.push_back(id);
    }
    for (ArcId id : expected) {
      if (g.arc(id).color != kInfluence) partitioned.push_back(id);
    }
    AdjSpan out = fg.Out(v);
    ASSERT_EQ(out.size(), partitioned.size());
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out.arcs[i], partitioned[i]);
      EXPECT_EQ(out.nodes[i], g.arc(partitioned[i]).dst);
    }
  }
}

}  // namespace
}  // namespace tpiin

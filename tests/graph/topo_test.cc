#include "graph/topo.h"

#include <gtest/gtest.h>

namespace tpiin {
namespace {

TEST(TopoTest, EmptyAndSingleton) {
  Digraph empty;
  EXPECT_TRUE(TopologicalSort(empty)->empty());
  Digraph one(1);
  EXPECT_EQ(TopologicalSort(one)->size(), 1u);
}

TEST(TopoTest, OrderRespectsArcs) {
  Digraph g(5);
  g.AddArc(0, 2, 0);
  g.AddArc(2, 4, 0);
  g.AddArc(1, 2, 0);
  g.AddArc(3, 4, 0);
  auto order = TopologicalSort(g);
  ASSERT_TRUE(order.ok());
  std::vector<size_t> pos(5);
  for (size_t i = 0; i < order->size(); ++i) pos[(*order)[i]] = i;
  for (const Arc& arc : g.arcs()) {
    EXPECT_LT(pos[arc.src], pos[arc.dst]);
  }
}

TEST(TopoTest, CycleIsFailedPrecondition) {
  Digraph g(3);
  g.AddArc(0, 1, 0);
  g.AddArc(1, 2, 0);
  g.AddArc(2, 0, 0);
  EXPECT_TRUE(TopologicalSort(g).status().IsFailedPrecondition());
  EXPECT_FALSE(IsDag(g));
}

TEST(TopoTest, SelfLoopIsCycle) {
  Digraph g(2);
  g.AddArc(0, 0, 0);
  EXPECT_FALSE(IsDag(g));
}

TEST(TopoTest, FilterCanRestoreAcyclicity) {
  Digraph g(3);
  g.AddArc(0, 1, 1);
  g.AddArc(1, 2, 1);
  g.AddArc(2, 0, 9);  // The cycle-closing arc has a different color.
  EXPECT_FALSE(IsDag(g));
  EXPECT_TRUE(IsDag(g, [](const Arc& arc) { return arc.color == 1; }));
}

}  // namespace
}  // namespace tpiin

// The parallel graph drivers (partitioned Tarjan SCC, chunked-forest
// WCC, chunked UnionArcs) promise bit-identical output to their serial
// counterparts at any thread count. These tests exercise graphs above
// the parallel-engagement thresholds (2^13 nodes / 2^14 arcs) so the
// concurrent code paths actually run, plus small graphs that take the
// serial fallback.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/connected.h"
#include "graph/frozen.h"
#include "graph/scc.h"
#include "graph/union_find.h"

namespace tpiin {
namespace {

// Random two-color digraph. Arcs are clustered inside blocks of
// `block` nodes so the graph has many weakly connected partitions of
// varying size — the shape the partition-parallel SCC driver fans out
// over — with a sprinkle of long-range arcs to create big partitions.
Digraph RandomDigraph(uint64_t seed, NodeId n, ArcId m, NodeId block) {
  Rng rng(seed);
  Digraph g(n);
  for (ArcId i = 0; i < m; ++i) {
    NodeId src = static_cast<NodeId>(rng.UniformU64(n));
    NodeId dst;
    if (rng.UniformU64(100) < 95) {
      NodeId base = src - (src % block);
      dst = base + static_cast<NodeId>(rng.UniformU64(block));
      if (dst >= n) dst = n - 1;
    } else {
      dst = static_cast<NodeId>(rng.UniformU64(n));
    }
    g.AddArc(src, dst, static_cast<ArcColor>(rng.UniformU64(2)));
  }
  return g;
}

void ExpectSccEqual(const SccResult& expected, const SccResult& actual) {
  EXPECT_EQ(actual.num_components, expected.num_components);
  EXPECT_EQ(actual.component_of, expected.component_of);
  EXPECT_EQ(actual.members, expected.members);
  EXPECT_EQ(actual.nontrivial_components,
            expected.nontrivial_components);
}

class ParallelGraphTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ParallelGraphTest, SccMatchesSerialAboveThreshold) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Digraph g = RandomDigraph(seed, /*n=*/20000, /*m=*/50000,
                              /*block=*/64);
    FrozenGraph frozen(g, /*influence_color=*/1);
    SccResult serial =
        StronglyConnectedComponents(frozen, FrozenArcClass::kAll);
    SccResult parallel = StronglyConnectedComponents(
        frozen, FrozenArcClass::kAll, GetParam());
    ExpectSccEqual(serial, parallel);

    SccResult serial_infl =
        StronglyConnectedComponents(frozen, FrozenArcClass::kInfluence);
    SccResult parallel_infl = StronglyConnectedComponents(
        frozen, FrozenArcClass::kInfluence, GetParam());
    ExpectSccEqual(serial_infl, parallel_infl);
  }
}

TEST_P(ParallelGraphTest, SccMatchesSerialOnOneBigPartition) {
  // A single weak partition forces the parallel driver through its
  // single-partition fallback (nothing to fan out over).
  Rng rng(11);
  const NodeId n = 10000;
  Digraph g(n);
  for (NodeId v = 0; v + 1 < n; ++v) g.AddArc(v, v + 1, 0);
  for (int i = 0; i < 2000; ++i) {
    NodeId src = static_cast<NodeId>(rng.UniformU64(n));
    NodeId dst = static_cast<NodeId>(rng.UniformU64(n));
    g.AddArc(src, dst, 0);
  }
  FrozenGraph frozen(g);
  ExpectSccEqual(
      StronglyConnectedComponents(frozen, FrozenArcClass::kAll),
      StronglyConnectedComponents(frozen, FrozenArcClass::kAll,
                                  GetParam()));
}

TEST_P(ParallelGraphTest, SccMatchesSerialBelowThreshold) {
  Digraph g = RandomDigraph(7, /*n=*/500, /*m=*/1500, /*block=*/16);
  FrozenGraph frozen(g);
  ExpectSccEqual(
      StronglyConnectedComponents(frozen, FrozenArcClass::kAll),
      StronglyConnectedComponents(frozen, FrozenArcClass::kAll,
                                  GetParam()));
}

TEST_P(ParallelGraphTest, WccMatchesSerialAboveThreshold) {
  for (uint64_t seed = 0; seed < 3; ++seed) {
    Digraph g = RandomDigraph(100 + seed, /*n=*/20000, /*m=*/40000,
                              /*block=*/32);
    FrozenGraph frozen(g, /*influence_color=*/1);
    for (FrozenArcClass arc_class :
         {FrozenArcClass::kAll, FrozenArcClass::kInfluence}) {
      WccResult serial = WeaklyConnectedComponents(frozen, arc_class);
      WccResult parallel =
          WeaklyConnectedComponents(frozen, arc_class, GetParam());
      EXPECT_EQ(parallel.num_components, serial.num_components);
      EXPECT_EQ(parallel.component_of, serial.component_of);
      EXPECT_EQ(parallel.members, serial.members);
    }
  }
}

TEST_P(ParallelGraphTest, UnionArcsMatchesSerialAboveThreshold) {
  Rng rng(42);
  const NodeId n = 30000;
  std::vector<Arc> arcs;
  for (int i = 0; i < 70000; ++i) {
    arcs.push_back(Arc{static_cast<NodeId>(rng.UniformU64(n)),
                       static_cast<NodeId>(rng.UniformU64(n)), 0});
  }
  UnionFind serial = UnionArcs(n, arcs, 1);
  UnionFind parallel = UnionArcs(n, arcs, GetParam());
  EXPECT_EQ(parallel.NumSets(), serial.NumSets());
  EXPECT_EQ(parallel.DenseComponentIds(), serial.DenseComponentIds());
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelGraphTest,
                         ::testing::Values(2u, 4u, 8u));

}  // namespace
}  // namespace tpiin

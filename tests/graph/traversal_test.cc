#include "graph/traversal.h"

#include <gtest/gtest.h>

namespace tpiin {
namespace {

TEST(ReachableFromTest, StartIsAlwaysReachable) {
  Digraph g(3);
  std::vector<bool> reach = ReachableFrom(g, 1);
  EXPECT_FALSE(reach[0]);
  EXPECT_TRUE(reach[1]);
  EXPECT_FALSE(reach[2]);
}

TEST(ReachableFromTest, FollowsDirection) {
  Digraph g(4);
  g.AddArc(0, 1, 0);
  g.AddArc(1, 2, 0);
  g.AddArc(3, 2, 0);
  std::vector<bool> reach = ReachableFrom(g, 0);
  EXPECT_TRUE(reach[0]);
  EXPECT_TRUE(reach[1]);
  EXPECT_TRUE(reach[2]);
  EXPECT_FALSE(reach[3]);  // Arc points into 2, not out of it.
}

TEST(ReachableFromTest, HandlesCycles) {
  Digraph g(3);
  g.AddArc(0, 1, 0);
  g.AddArc(1, 0, 0);
  g.AddArc(1, 2, 0);
  std::vector<bool> reach = ReachableFrom(g, 0);
  EXPECT_TRUE(reach[0] && reach[1] && reach[2]);
}

TEST(ReachableFromTest, FilterBlocksArcs) {
  Digraph g(3);
  g.AddArc(0, 1, 1);
  g.AddArc(1, 2, 2);
  std::vector<bool> reach =
      ReachableFrom(g, 0, [](const Arc& arc) { return arc.color == 1; });
  EXPECT_TRUE(reach[1]);
  EXPECT_FALSE(reach[2]);
}

TEST(FindSubgraphsDfsTest, MembersSortedAndComplete) {
  Digraph g(5);
  g.AddArc(4, 2, 0);
  g.AddArc(2, 0, 0);
  WccResult wcc = FindSubgraphsDfs(g);
  EXPECT_EQ(wcc.num_components, 3u);
  std::vector<NodeId> big = wcc.members[wcc.component_of[0]];
  EXPECT_EQ(big, (std::vector<NodeId>{0, 2, 4}));
}

}  // namespace
}  // namespace tpiin

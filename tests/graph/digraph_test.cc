#include "graph/digraph.h"

#include <gtest/gtest.h>

namespace tpiin {
namespace {

TEST(DigraphTest, EmptyGraph) {
  Digraph g;
  EXPECT_EQ(g.NumNodes(), 0u);
  EXPECT_EQ(g.NumArcs(), 0u);
}

TEST(DigraphTest, AddNodesAndArcs) {
  Digraph g(3);
  EXPECT_EQ(g.NumNodes(), 3u);
  ArcId a = g.AddArc(0, 1, 5);
  ArcId b = g.AddArc(1, 2, 6);
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(g.arc(a).src, 0u);
  EXPECT_EQ(g.arc(a).dst, 1u);
  EXPECT_EQ(g.arc(a).color, 5);
}

TEST(DigraphTest, IncrementalNodeAddition) {
  Digraph g;
  NodeId a = g.AddNode();
  NodeId b = g.AddNode();
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  g.AddNodes(3);
  EXPECT_EQ(g.NumNodes(), 5u);
  EXPECT_TRUE(g.HasNode(4));
  EXPECT_FALSE(g.HasNode(5));
}

TEST(DigraphTest, OutAdjacencyInInsertionOrder) {
  Digraph g(4);
  g.AddArc(0, 1, 0);
  g.AddArc(0, 3, 0);
  g.AddArc(0, 2, 0);
  std::span<const ArcId> out = g.OutArcs(0);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(g.arc(out[0]).dst, 1u);
  EXPECT_EQ(g.arc(out[1]).dst, 3u);
  EXPECT_EQ(g.arc(out[2]).dst, 2u);
  EXPECT_EQ(g.OutDegree(0), 3u);
  EXPECT_EQ(g.OutDegree(1), 0u);
}

TEST(DigraphTest, InDegreeMaintainedIncrementally) {
  Digraph g(3);
  g.AddArc(0, 2, 0);
  g.AddArc(1, 2, 0);
  EXPECT_EQ(g.InDegree(2), 2u);
  EXPECT_EQ(g.InDegree(0), 0u);
}

TEST(DigraphTest, InAdjacencyAfterBuild) {
  Digraph g(3);
  g.AddArc(0, 2, 0);
  g.AddArc(1, 2, 1);
  g.BuildInAdjacency();
  std::span<const ArcId> in = g.InArcs(2);
  ASSERT_EQ(in.size(), 2u);
  EXPECT_EQ(g.arc(in[0]).src, 0u);
  EXPECT_EQ(g.arc(in[1]).src, 1u);
  // Rebuild after mutation picks up new arcs.
  g.AddArc(2, 0, 0);
  g.BuildInAdjacency();
  EXPECT_EQ(g.InArcs(0).size(), 1u);
}

TEST(DigraphTest, ParallelArcsAndSelfLoopsAllowed) {
  Digraph g(2);
  g.AddArc(0, 1, 0);
  g.AddArc(0, 1, 0);
  g.AddArc(1, 1, 0);
  EXPECT_EQ(g.NumArcs(), 3u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(1), 3u);
}

}  // namespace
}  // namespace tpiin

#include "graph/degree.h"

#include <gtest/gtest.h>

namespace tpiin {
namespace {

TEST(DegreeStatsTest, EmptyGraph) {
  Digraph g;
  DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_EQ(stats.num_nodes, 0u);
  EXPECT_EQ(stats.num_arcs, 0u);
  EXPECT_DOUBLE_EQ(stats.average_degree, 0.0);
}

TEST(DegreeStatsTest, CountsAndAverages) {
  Digraph g(4);
  g.AddArc(0, 1, 0);
  g.AddArc(0, 2, 0);
  g.AddArc(1, 2, 0);
  DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_EQ(stats.num_nodes, 4u);
  EXPECT_EQ(stats.num_arcs, 3u);
  // Gephi convention for directed graphs: |E| / |V|.
  EXPECT_DOUBLE_EQ(stats.average_degree, 0.75);
  EXPECT_EQ(stats.max_out_degree, 2u);
  EXPECT_EQ(stats.max_in_degree, 2u);
  EXPECT_EQ(stats.num_indegree_zero, 2u);   // 0 and 3.
  EXPECT_EQ(stats.num_outdegree_zero, 2u);  // 2 and 3.
  EXPECT_EQ(stats.num_isolated, 1u);        // 3.
}

TEST(DegreeStatsTest, FilterChangesEverything) {
  Digraph g(3);
  g.AddArc(0, 1, 1);
  g.AddArc(1, 2, 2);
  DegreeStats stats = ComputeDegreeStats(
      g, [](const Arc& arc) { return arc.color == 1; });
  EXPECT_EQ(stats.num_arcs, 1u);
  EXPECT_EQ(stats.num_isolated, 1u);  // Node 2 under the filter.
}

}  // namespace
}  // namespace tpiin

// Ablations of the design choices DESIGN.md §5 calls out:
//   A1  union-find vs the paper's DFS findsubgraph() for the MWCS
//       segmentation (identical output, different constants);
//   A2  divide-and-conquer segmentation ON vs OFF (mining the whole
//       TPIIN as a single subTPIIN);
//   A3  patterns-tree prefix sharing: tree nodes vs total emitted trail
//       elements (the redundancy the shared tree avoids);
//   A4  counting-only matching vs materializing every suspicious group.

#include <algorithm>
#include <cstdio>
#include <thread>

#include "bench/bench_json.h"
#include "bench/bench_net.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/detector.h"
#include "core/matcher.h"
#include "core/pattern_tree.h"
#include "core/subtpiin.h"
#include "datagen/province.h"
#include "fusion/pipeline.h"
#include "graph/connected.h"
#include "graph/traversal.h"

namespace tpiin {
namespace {

// Whole-TPIIN view as one SubTpiin (segmentation disabled). Trading arcs
// whose endpoints lie in different antecedent components become
// partnerless trade trails and change nothing but the work done.
SubTpiin WholeAsSubTpiin(const Tpiin& net) {
  SubTpiin sub;
  sub.parent = &net;
  sub.global_of_local.resize(net.NumNodes());
  for (NodeId v = 0; v < net.NumNodes(); ++v) sub.global_of_local[v] = v;
  sub.graph.AddNodes(net.NumNodes());
  sub.global_arc_of_local.resize(net.NumArcs());
  for (ArcId id = 0; id < net.NumArcs(); ++id) {
    const Arc arc = net.arc(id);
    sub.graph.AddArc(arc.src, arc.dst, arc.color);
    sub.global_arc_of_local[id] = id;
  }
  sub.num_influence_arcs = net.num_influence_arcs();
  return sub;
}

int Run(BenchJsonWriter& json, BenchNetSource& source) {
  Result<FusionOutput> fused = Status::Internal("unset");
  const Tpiin* net_ptr = nullptr;
  if (source.from_snapshot()) {
    net_ptr = &source.Open();
    json.Record("ablation_snapshot_open", "p=0.02",
                source.open_seconds());
  } else {
    ProvinceConfig config = PaperProvinceConfig();
    config.trading_probability = 0.02;
    Result<Province> province = GenerateProvince(config);
    TPIIN_CHECK(province.ok());
    fused = BuildTpiin(province->dataset);
    TPIIN_CHECK(fused.ok());
    source.MaybeWrite(fused->tpiin);
    net_ptr = &fused->tpiin;
  }
  const Tpiin& net = *net_ptr;

  std::printf("=== Ablations (province at p=0.02: %u nodes, %u arcs) "
              "===\n\n",
              net.NumNodes(), net.NumArcs());

  // --- A1: union-find vs DFS weak-connectivity (both on the frozen
  // CSR, so the comparison also holds for mmap-opened snapshots).
  {
    constexpr int kReps = 50;
    WallTimer timer;
    WccResult uf;
    for (int i = 0; i < kReps; ++i) {
      uf = WeaklyConnectedComponents(net.frozen(),
                                     FrozenArcClass::kInfluence);
    }
    double uf_s = timer.ElapsedSeconds() / kReps;
    timer.Restart();
    WccResult dfs;
    for (int i = 0; i < kReps; ++i) {
      dfs = FindSubgraphsDfs(net.frozen(), FrozenArcClass::kInfluence);
    }
    double dfs_s = timer.ElapsedSeconds() / kReps;
    TPIIN_CHECK_EQ(uf.num_components, dfs.num_components);
    std::printf("A1 MWCS segmentation: union-find %.4fs vs DFS "
                "findsubgraph() %.4fs (%u components, identical)\n",
                uf_s, dfs_s, uf.num_components);
    json.Record("ablation_a1", "union_find", uf_s);
    json.Record("ablation_a1", "dfs", dfs_s);
  }

  // --- A2: segmentation on vs off.
  {
    DetectorOptions options;
    options.match.collect_groups = false;
    WallTimer timer;
    Result<DetectionResult> with = DetectSuspiciousGroups(net, options);
    TPIIN_CHECK(with.ok());
    double with_s = timer.ElapsedSeconds();

    timer.Restart();
    SubTpiin whole = WholeAsSubTpiin(net);
    PatternGenOptions gen_options;
    gen_options.emit_trails = false;
    Result<PatternGenResult> gen = GeneratePatternBase(whole, gen_options);
    TPIIN_CHECK(gen.ok());
    MatchOptions match_options;
    match_options.collect_groups = false;
    MatchResult match = MatchPatternsTree(whole, gen->tree, match_options);
    double without_s = timer.ElapsedSeconds();

    TPIIN_CHECK_EQ(match.num_simple + match.num_complex,
                   with->num_simple + with->num_complex);
    std::printf(
        "A2 divide-and-conquer: segmented %.3fs (%zu subTPIINs, %zu "
        "trails) vs unsegmented %.3fs (%zu trails); identical %zu "
        "groups\n",
        with_s, with->num_subtpiins, with->num_trails, without_s,
        gen->num_trails, with->num_simple + with->num_complex);
    json.Record("ablation_a2", "segmented", with_s);
    json.Record("ablation_a2", "unsegmented", without_s);
  }

  // --- A3: prefix sharing in the patterns tree.
  {
    size_t tree_nodes = 0;
    size_t trail_elements = 0;
    PatternGenOptions gen_options;
    gen_options.build_tree = true;
    for (const SubTpiin& sub : SegmentTpiin(net)) {
      Result<PatternGenResult> gen = GeneratePatternBase(sub, gen_options);
      TPIIN_CHECK(gen.ok());
      tree_nodes += gen->tree.nodes.size();
      for (const auto& trail : gen->base) {
        trail_elements += trail.nodes.size() + (trail.has_trade() ? 1 : 0);
      }
    }
    std::printf(
        "A3 patterns-tree sharing: %zu tree nodes represent %zu trail "
        "elements (%.2fx compression from shared prefixes)\n",
        tree_nodes, trail_elements,
        tree_nodes ? static_cast<double>(trail_elements) / tree_nodes
                   : 0.0);
    json.Record("ablation_a3", "compression", 0,
                tree_nodes
                    ? static_cast<double>(trail_elements) / tree_nodes
                    : 0.0);
  }

  // --- A4': tree-driven vs flat-base matching (the patterns tree's
  // payoff beyond prefix storage: partner lookups without prefix
  // re-deduplication).
  {
    std::vector<SubTpiin> subs = SegmentTpiin(net);
    std::vector<PatternGenResult> gens;
    for (const SubTpiin& sub : subs) {
      Result<PatternGenResult> gen = GeneratePatternBase(sub);
      TPIIN_CHECK(gen.ok());
      gens.push_back(std::move(gen).value());
    }
    MatchOptions match_options;
    match_options.collect_groups = false;
    WallTimer timer;
    size_t tree_groups = 0;
    for (size_t i = 0; i < subs.size(); ++i) {
      MatchResult m = MatchPatternsTree(subs[i], gens[i].tree, match_options);
      tree_groups += m.num_simple + m.num_complex;
    }
    double tree_s = timer.ElapsedSeconds();
    timer.Restart();
    size_t base_groups = 0;
    for (size_t i = 0; i < subs.size(); ++i) {
      MatchResult m = MatchPatterns(subs[i], gens[i].base, match_options);
      base_groups += m.num_simple + m.num_complex;
    }
    double base_s = timer.ElapsedSeconds();
    TPIIN_CHECK_EQ(tree_groups, base_groups);
    std::printf(
        "A4' matching formulation: tree-driven %.3fs vs flat-base %.3fs "
        "(identical %zu groups)\n",
        tree_s, base_s, tree_groups);
    json.Record("ablation_a4_match", "tree", tree_s);
    json.Record("ablation_a4_match", "flat_base", base_s);
  }

  // --- A5: parallel per-subTPIIN processing (§7 future work). The unit
  // of parallelism is one subTPIIN, so the largest weakly connected
  // component bounds the speedup (Amdahl); real provinces are dominated
  // by one conglomerate component, and this one is no different.
  {
    std::vector<SubTpiin> subs = SegmentTpiin(net);
    size_t total_arcs = 0;
    size_t largest_arcs = 0;
    for (const SubTpiin& sub : subs) {
      total_arcs += sub.graph.NumArcs();
      largest_arcs = std::max<size_t>(largest_arcs, sub.graph.NumArcs());
    }
    std::printf(
        "A5 parallelism bound: largest subTPIIN holds %.1f%% of the "
        "mining work (%zu of %zu arcs); this host has %u hardware "
        "thread(s)\n",
        total_arcs ? 100.0 * largest_arcs / total_arcs : 0.0,
        largest_arcs, total_arcs, std::thread::hardware_concurrency());
    DetectorOptions options;
    options.match.collect_groups = false;
    double single_s = 0;
    for (uint32_t threads : {1u, 2u, 4u, 8u}) {
      options.num_threads = threads;
      WallTimer timer;
      Result<DetectionResult> result = DetectSuspiciousGroups(net, options);
      TPIIN_CHECK(result.ok());
      double elapsed = timer.ElapsedSeconds();
      if (threads == 1) single_s = elapsed;
      std::printf(
          "A5 parallel detect: %u thread(s) %.3fs (%.2fx vs 1 thread)\n",
          threads, elapsed, elapsed > 0 ? single_s / elapsed : 0.0);
      json.Record("ablation_a5_detect",
                  StringPrintf("threads=%u", threads), elapsed);
    }
  }

  // --- A4: counting-only vs materializing groups.
  {
    DetectorOptions counting;
    counting.match.collect_groups = false;
    WallTimer timer;
    Result<DetectionResult> count_result =
        DetectSuspiciousGroups(net, counting);
    TPIIN_CHECK(count_result.ok());
    double count_s = timer.ElapsedSeconds();

    DetectorOptions collecting;  // collect_groups defaults to true.
    timer.Restart();
    Result<DetectionResult> collect_result =
        DetectSuspiciousGroups(net, collecting);
    TPIIN_CHECK(collect_result.ok());
    double collect_s = timer.ElapsedSeconds();
    std::printf(
        "A4 group materialization: counting-only %.3fs vs collecting "
        "%zu group records %.3fs\n",
        count_s, collect_result->groups.size(), collect_s);
    json.Record("ablation_a4_collect", "counting", count_s);
    json.Record("ablation_a4_collect", "collecting", collect_s);
  }
  json.Flush();
  return 0;
}

}  // namespace
}  // namespace tpiin

int main(int argc, char** argv) {
  tpiin::BenchJsonWriter json =
      tpiin::BenchJsonWriter::FromArgs(argc, argv);
  tpiin::BenchNetSource source = tpiin::BenchNetSource::FromArgs(argc, argv);
  return tpiin::Run(json, source);
}

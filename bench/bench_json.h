// Shared --json support for the printf-style bench binaries: pass
// `--json <path>` (or `--json=<path>`) to any wired benchmark and it
// writes its measurements as a JSON array of
// {"bench": ..., "case": ..., "seconds": ..., "throughput": ...}
// records alongside the human-readable report, so sweeps can be
// archived and diffed by tooling without scraping stdout.

#ifndef TPIIN_BENCH_BENCH_JSON_H_
#define TPIIN_BENCH_BENCH_JSON_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"

namespace tpiin {

class BenchJsonWriter {
 public:
  /// Scans argv for `--json <path>` / `--json=<path>`. Absent flag means
  /// a disabled writer (Record/Flush are no-ops).
  static BenchJsonWriter FromArgs(int argc, char** argv) {
    BenchJsonWriter writer;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--json=", 0) == 0) {
        writer.path_ = arg.substr(7);
      } else if (arg == "--json") {
        if (i + 1 < argc) {
          writer.path_ = argv[++i];
        } else {
          TPIIN_LOG(Error) << "--json requires a path; ignoring";
        }
      }
    }
    return writer;
  }

  bool enabled() const { return !path_.empty(); }

  /// Records one measurement. `throughput` is benchmark-defined
  /// (items/s, arcs/s, ...); pass 0 when meaningless.
  void Record(const std::string& bench, const std::string& case_name,
              double seconds, double throughput = 0) {
    if (!enabled()) return;
    records_.push_back(StringPrintf(
        "  {\"bench\": \"%s\", \"case\": \"%s\", \"seconds\": %.9g, "
        "\"throughput\": %.9g}",
        Escape(bench).c_str(), Escape(case_name).c_str(), seconds,
        throughput));
  }

  /// Writes the JSON array. Returns false (with a log line) on I/O
  /// failure; callers treat the JSON artifact as best-effort.
  bool Flush() const {
    if (!enabled()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      TPIIN_LOG(Error) << "cannot write " << path_;
      return false;
    }
    std::fputs("[\n", f);
    for (size_t i = 0; i < records_.size(); ++i) {
      std::fputs(records_[i].c_str(), f);
      std::fputs(i + 1 < records_.size() ? ",\n" : "\n", f);
    }
    std::fputs("]\n", f);
    std::fclose(f);
    std::printf("wrote %zu JSON records to %s\n", records_.size(),
                path_.c_str());
    return true;
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  std::string path_;
  std::vector<std::string> records_;
};

/// Scans argv for `--threads N` / `--threads=N`. Returns
/// `default_threads` when absent. 0 means auto-detect (resolved by the
/// consumer via ResolveThreadCount). Harnesses that parallelize across
/// measurement rows default to 1 so timings stay uncontended unless the
/// user opts in.
inline uint32_t ParseThreadsFlag(int argc, char** argv,
                                 uint32_t default_threads = 1) {
  uint32_t threads = default_threads;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (arg.rfind("--threads=", 0) == 0) {
      value = arg.substr(10);
    } else if (arg == "--threads" && i + 1 < argc) {
      value = argv[++i];
    } else {
      continue;
    }
    char* end = nullptr;
    unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
      TPIIN_LOG(Error) << "--threads wants a number, got '" << value
                       << "'; ignoring";
      continue;
    }
    threads = static_cast<uint32_t>(parsed);
  }
  return threads;
}

}  // namespace tpiin

#endif  // TPIIN_BENCH_BENCH_JSON_H_

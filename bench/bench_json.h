// Shared observability flags for the printf-style bench binaries:
//   --json=PATH       measurements as a JSON array of
//                     {"bench", "case", "seconds", "throughput"} records
//   --report=PATH     a RunReport (measurement table + run-wide metrics
//                     snapshot), diffable by tools/bench_compare
//   --trace-out=PATH  Chrome trace_event JSON of the run's spans
// so sweeps can be archived and diffed by tooling without scraping
// stdout.

#ifndef TPIIN_BENCH_BENCH_JSON_H_
#define TPIIN_BENCH_BENCH_JSON_H_

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"

namespace tpiin {

class BenchJsonWriter {
 public:
  /// Scans argv for `--json <path>` / `--json=<path>` (and the
  /// `--report` / `--trace-out` run-report flags, same two spellings).
  /// Absent flags mean a disabled writer (Record/Flush are no-ops).
  /// When --report is given the run-wide metrics registry is reset so
  /// the snapshot covers exactly this run; when --trace-out is given a
  /// TraceRecorder is installed until Flush().
  static BenchJsonWriter FromArgs(int argc, char** argv) {
    BenchJsonWriter writer;
    if (argc > 0) {
      std::string tool = argv[0];
      size_t slash = tool.find_last_of('/');
      writer.tool_ =
          slash == std::string::npos ? tool : tool.substr(slash + 1);
    }
    auto flag_value = [&](int* i, const char* eq_prefix,
                          const char* name, std::string* out) {
      std::string arg = argv[*i];
      if (arg.rfind(eq_prefix, 0) == 0) {
        *out = arg.substr(std::string(eq_prefix).size());
        return true;
      }
      if (arg == name) {
        if (*i + 1 < argc) {
          *out = argv[++*i];
        } else {
          TPIIN_LOG(Error) << name << " requires a path; ignoring";
        }
        return true;
      }
      return false;
    };
    for (int i = 1; i < argc; ++i) {
      if (flag_value(&i, "--json=", "--json", &writer.path_)) continue;
      if (flag_value(&i, "--report=", "--report", &writer.report_path_)) {
        continue;
      }
      flag_value(&i, "--trace-out=", "--trace-out", &writer.trace_path_);
    }
    if (!writer.report_path_.empty()) MetricsRegistry::Global().Reset();
    if (!writer.trace_path_.empty()) {
      // The recorder object is heap-owned, so moving the writer out of
      // this factory does not move the installed recorder.
      writer.recorder_ = std::make_unique<TraceRecorder>();
      writer.recorder_->Install();
    }
    return writer;
  }

  bool enabled() const { return !path_.empty(); }

  /// Records one measurement. `throughput` is benchmark-defined
  /// (items/s, arcs/s, ...); pass 0 when meaningless.
  void Record(const std::string& bench, const std::string& case_name,
              double seconds, double throughput = 0) {
    if (!report_path_.empty()) {
      rows_.push_back(Measurement{bench, case_name, seconds, throughput});
    }
    if (!enabled()) return;
    records_.push_back(StringPrintf(
        "  {\"bench\": \"%s\", \"case\": \"%s\", \"seconds\": %.9g, "
        "\"throughput\": %.9g}",
        Escape(bench).c_str(), Escape(case_name).c_str(), seconds,
        throughput));
  }

  /// Writes every requested artifact (JSON array, run report, trace).
  /// Returns false (with a log line) on any I/O failure; callers treat
  /// the artifacts as best-effort.
  bool Flush() {
    bool ok = true;
    if (enabled()) {
      std::FILE* f = std::fopen(path_.c_str(), "w");
      if (f == nullptr) {
        TPIIN_LOG(Error) << "cannot write " << path_;
        ok = false;
      } else {
        std::fputs("[\n", f);
        for (size_t i = 0; i < records_.size(); ++i) {
          std::fputs(records_[i].c_str(), f);
          std::fputs(i + 1 < records_.size() ? ",\n" : "\n", f);
        }
        std::fputs("]\n", f);
        std::fclose(f);
        std::printf("wrote %zu JSON records to %s\n", records_.size(),
                    path_.c_str());
      }
    }
    if (recorder_ != nullptr) {
      TraceRecorder::Uninstall();
      if (recorder_->WriteChromeTrace(trace_path_)) {
        std::printf("wrote %zu trace events to %s\n",
                    recorder_->NumEvents(), trace_path_.c_str());
      } else {
        TPIIN_LOG(Error) << "cannot write " << trace_path_;
        ok = false;
      }
      recorder_.reset();
    }
    if (!report_path_.empty()) {
      RunReport report(tool_);
      double total = 0;
      ReportTable& table = report.AddTable(
          "measurements", {"bench", "case", "seconds", "throughput"});
      for (const Measurement& m : rows_) {
        total += m.seconds;
        table.AddRow()
            .Append(m.bench)
            .Append(m.case_name)
            .Append(m.seconds)
            .Append(m.throughput);
      }
      report.set_total_seconds(total);
      report.AttachMetrics(MetricsRegistry::Global().Snapshot());
      if (report.WriteJson(report_path_)) {
        std::printf("wrote run report to %s\n", report_path_.c_str());
      } else {
        TPIIN_LOG(Error) << "cannot write " << report_path_;
        ok = false;
      }
    }
    return ok;
  }

 private:
  static std::string Escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  }

  struct Measurement {
    std::string bench;
    std::string case_name;
    double seconds = 0;
    double throughput = 0;
  };

  std::string path_;
  std::string report_path_;
  std::string trace_path_;
  std::string tool_ = "bench";
  std::unique_ptr<TraceRecorder> recorder_;
  std::vector<std::string> records_;
  std::vector<Measurement> rows_;
};

/// Scans argv for `--threads N` / `--threads=N`. Returns
/// `default_threads` when absent. 0 means auto-detect (resolved by the
/// consumer via ResolveThreadCount). Harnesses that parallelize across
/// measurement rows default to 1 so timings stay uncontended unless the
/// user opts in.
inline uint32_t ParseThreadsFlag(int argc, char** argv,
                                 uint32_t default_threads = 1) {
  uint32_t threads = default_threads;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (arg.rfind("--threads=", 0) == 0) {
      value = arg.substr(10);
    } else if (arg == "--threads" && i + 1 < argc) {
      value = argv[++i];
    } else {
      continue;
    }
    char* end = nullptr;
    unsigned long parsed = std::strtoul(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0') {
      TPIIN_LOG(Error) << "--threads wants a number, got '" << value
                       << "'; ignoring";
      continue;
    }
    threads = static_cast<uint32_t>(parsed);
  }
  return threads;
}

}  // namespace tpiin

#endif  // TPIIN_BENCH_BENCH_JSON_H_

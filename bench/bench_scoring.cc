// Quality of the suspicion scoring extension (§7 future work): on a
// province with planted IAT schemes plus random-noise trading, rank all
// flagged relationships by score and measure how well the planted
// relationships concentrate at the top (precision@K with K = number of
// planted relationships that were flagged, and their mean normalized
// rank). Random noise arcs that merely happen to share an antecedent
// should, on average, carry weaker proof chains than deliberately
// planted structures.

#include <algorithm>
#include <cstdio>
#include <set>

#include "bench/bench_json.h"
#include "bench/bench_net.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/detector.h"
#include "core/scoring.h"
#include "datagen/plant.h"
#include "datagen/province.h"
#include "fusion/pipeline.h"

namespace tpiin {
namespace {

int Run(BenchJsonWriter& json, BenchNetSource& source) {
  std::printf("=== Scoring quality: planted schemes vs noise ===\n\n");
  std::printf("%-8s %-10s %-10s %-12s %-14s %-12s\n", "seed", "planted",
              "flagged", "prec@K", "mean-rank", "median-rank");

  // A snapshot holds exactly one fused net, so snapshot mode runs the
  // seed-1 row only (that is the net --write-snapshot persists); the
  // planted pairs still come from the regenerated seed-1 dataset.
  std::vector<uint64_t> seeds = {1, 2, 3, 4, 5};
  if (source.from_snapshot()) seeds = {1};

  for (uint64_t seed : seeds) {
    ProvinceConfig config = PaperProvinceConfig(seed);
    config.trading_probability = 0.002;
    Result<Province> province = GenerateProvince(config);
    TPIIN_CHECK(province.ok());
    Rng rng(seed * 101);
    std::vector<PlantedScheme> planted =
        PlantSuspiciousTrades(province->dataset, rng, 150);

    Result<FusionOutput> fused = Status::Internal("unset");
    const Tpiin* net_ptr = nullptr;
    if (source.from_snapshot()) {
      net_ptr = &source.Open();
      json.Record("scoring_snapshot_open", "seed=1",
                  source.open_seconds());
    } else {
      fused = BuildTpiin(province->dataset);
      TPIIN_CHECK(fused.ok());
      if (seed == 1) source.MaybeWrite(fused->tpiin);
      net_ptr = &fused->tpiin;
    }
    const Tpiin& net = *net_ptr;
    Result<DetectionResult> detection = DetectSuspiciousGroups(net);
    TPIIN_CHECK(detection.ok());
    WallTimer score_timer;
    ScoringResult scoring = ScoreDetection(net, *detection);
    double score_s = score_timer.ElapsedSeconds();

    std::set<std::pair<NodeId, NodeId>> planted_pairs;
    for (const PlantedScheme& scheme : planted) {
      planted_pairs.emplace(net.NodeOfCompany(scheme.seller),
                            net.NodeOfCompany(scheme.buyer));
    }

    // Ranks of planted relationships within the scored list.
    std::vector<size_t> ranks;
    for (size_t i = 0; i < scoring.ranked_trades.size(); ++i) {
      const ScoredTrade& trade = scoring.ranked_trades[i];
      if (planted_pairs.count({trade.seller, trade.buyer})) {
        ranks.push_back(i);
      }
    }
    TPIIN_CHECK(!ranks.empty());
    size_t k = ranks.size();
    size_t hits_at_k = 0;
    for (size_t rank : ranks) hits_at_k += rank < k ? 1 : 0;
    double mean_rank = 0;
    for (size_t rank : ranks) mean_rank += static_cast<double>(rank);
    mean_rank /= ranks.size() * std::max<size_t>(
                                    1, scoring.ranked_trades.size());
    double median_rank =
        static_cast<double>(ranks[ranks.size() / 2]) /
        std::max<size_t>(1, scoring.ranked_trades.size());

    std::printf("%-8llu %-10zu %-10zu %-12.3f %-14.3f %-12.3f\n",
                static_cast<unsigned long long>(seed), planted.size(),
                scoring.ranked_trades.size(),
                static_cast<double>(hits_at_k) / k, mean_rank,
                median_rank);
    std::string case_name = StringPrintf(
        "seed=%llu", static_cast<unsigned long long>(seed));
    json.Record("scoring_score", case_name, score_s,
                score_s > 0 ? scoring.ranked_trades.size() / score_s : 0);
    json.Record("scoring_precision_at_k", case_name, 0,
                static_cast<double>(hits_at_k) / k);
  }
  json.Flush();
  std::printf(
      "\n(prec@K: fraction of the K flagged planted relationships found "
      "in the top K of the score ranking; ranks are normalized by the "
      "ranked-list length, lower is better, 0.5 would be random.)\n");
  return 0;
}

}  // namespace
}  // namespace tpiin

int main(int argc, char** argv) {
  tpiin::BenchJsonWriter json =
      tpiin::BenchJsonWriter::FromArgs(argc, argv);
  tpiin::BenchNetSource source = tpiin::BenchNetSource::FromArgs(argc, argv);
  return tpiin::Run(json, source);
}

// Reproduces the network statistics behind Figs. 11-16: the homogeneous
// layers G1 (interdependence), G2 (influence), G3 (investment), the
// antecedent network G123, the trading network G4 (p = 0.002) and the
// fused TPIIN. The paper renders these in Gephi; here we report the
// structural quantities its captions state (node counts per class, arc
// counts, degree statistics) for the synthetic province generated at the
// published population (776 directors, 1350 legal persons, 2452
// companies).

#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_net.h"
#include "common/logging.h"
#include "common/timer.h"
#include "datagen/province.h"
#include "fusion/layers.h"
#include "fusion/pipeline.h"
#include "graph/connected.h"
#include "graph/degree.h"
#include "graph/scc.h"
#include "graph/topo.h"

namespace tpiin {
namespace {

void PrintStats(const char* figure, const char* name,
                const DegreeStats& stats) {
  std::printf(
      "%-8s %-22s nodes=%-6u arcs=%-7u avg-degree=%-8.3f max-in=%-5u "
      "max-out=%-5u isolated=%u\n",
      figure, name, stats.num_nodes, stats.num_arcs, stats.average_degree,
      stats.max_in_degree, stats.max_out_degree, stats.num_isolated);
}

// Figs. 14 and 16 describe the fused TPIIN itself, so they are computed
// from the frozen CSR and work for both input paths. Figs. 11-13 and 15
// describe the raw homogeneous layers, which a snapshot does not carry —
// in --snapshot mode those are skipped.
void PrintFig14(const Tpiin& net) {
  DegreeStats antecedent =
      ComputeDegreeStats(net.frozen(), FrozenArcClass::kInfluence);
  PrintStats("Fig.14", "G123 antecedent", antecedent);
  WccResult wcc =
      WeaklyConnectedComponents(net.frozen(), FrozenArcClass::kInfluence);
  std::printf("         (DAG verified: %s; %u weakly connected "
              "components)\n",
              IsDag(net.frozen(), FrozenArcClass::kInfluence) ? "yes" : "no",
              wcc.num_components);
}

void PrintFig16(BenchJsonWriter& json, const Tpiin& net) {
  PrintStats("Fig.16", "TPIIN (fused)",
             ComputeDegreeStats(net.frozen(), FrozenArcClass::kAll));
  json.Record("fig_networks_tpiin_nodes", "p=0.002", 0, net.NumNodes());
  json.Record("fig_networks_tpiin_arcs", "p=0.002", 0, net.NumArcs());
}

int Run(BenchJsonWriter& json, BenchNetSource& source) {
  if (source.from_snapshot()) {
    const Tpiin& net = source.Open();
    std::printf("=== Figs. 14/16: fused TPIIN (from snapshot; raw-layer "
                "figures 11-13/15 need the CSV dataset) ===\n");
    PrintFig14(net);
    PrintFig16(json, net);
    json.Record("fig_networks_snapshot_open", "p=0.002",
                source.open_seconds());
    json.Flush();
    return 0;
  }
  ProvinceConfig config = PaperProvinceConfig();
  config.trading_probability = 0.002;  // Fig. 15 uses the sparsest layer.
  Result<Province> province = GenerateProvince(config);
  TPIIN_CHECK(province.ok()) << province.status().ToString();
  const RawDataset& data = province->dataset;

  size_t acting_lps = 0;
  {
    std::vector<bool> is_lp(data.persons().size(), false);
    for (const InfluenceRecord& rec : data.influence()) {
      if (rec.is_legal_person) is_lp[rec.person] = true;
    }
    for (bool lp : is_lp) acting_lps += lp ? 1 : 0;
  }
  std::printf("=== Figs. 11-16: network layers of the provincial TPIIN "
              "===\n");
  std::printf(
      "Population: %zu persons (paper: 776 directors + 1350 legal "
      "persons), of whom %zu act as a registered LP; %zu companies "
      "(paper: 2452)\n\n",
      data.persons().size(), acting_lps, data.companies().size());

  Digraph g1 = BuildInterdependenceGraph(data);
  PrintStats("Fig.11", "G1 interdependence", ComputeDegreeStats(g1));
  size_t kinship = 0;
  size_t interlocking = 0;
  for (const Arc& arc : g1.arcs()) {
    (arc.color == kLayerKinship ? kinship : interlocking) += 1;
  }
  std::printf("         (kinship edges=%zu, interlocking edges=%zu)\n",
              kinship, interlocking);

  Digraph g2 = BuildInfluenceLayerGraph(data);
  PrintStats("Fig.12", "G2 influence", ComputeDegreeStats(g2));

  Digraph g3 = BuildInvestmentGraph(data);
  PrintStats("Fig.13", "G3 investment", ComputeDegreeStats(g3));
  SccResult scc = StronglyConnectedComponents(g3);
  std::printf(
      "         (strongly connected subgraphs: %zu — the paper found "
      "none either; G3 is a simple DAG: %s)\n",
      scc.nontrivial_components.size(),
      IsDag(g3) ? "yes" : "no");

  WallTimer fuse_timer;
  Result<FusionOutput> fused = BuildTpiin(data);
  TPIIN_CHECK(fused.ok()) << fused.status().ToString();
  double fuse_s = fuse_timer.ElapsedSeconds();
  const Tpiin& net = fused->tpiin;
  source.MaybeWrite(net);

  PrintFig14(net);

  Digraph g4 = BuildTradingGraph(data);
  PrintStats("Fig.15", "G4 trading (p=0.002)", ComputeDegreeStats(g4));

  PrintFig16(json, net);
  std::printf("         (TPIIN nodes=%u: %zu person/syndicate + %zu "
              "company nodes; paper total 4578)\n",
              net.NumNodes(), fused->stats.person_syndicates,
              static_cast<size_t>(net.NumNodes()) -
                  fused->stats.person_syndicates);
  std::printf("\nFusion detail:\n%s\n", fused->stats.ToString().c_str());
  json.Record("fig_networks_fuse", "p=0.002", fuse_s,
              fuse_s > 0 ? net.NumArcs() / fuse_s : 0);
  json.Flush();
  return 0;
}

}  // namespace
}  // namespace tpiin

int main(int argc, char** argv) {
  tpiin::BenchJsonWriter json =
      tpiin::BenchJsonWriter::FromArgs(argc, argv);
  tpiin::BenchNetSource source = tpiin::BenchNetSource::FromArgs(argc, argv);
  return tpiin::Run(json, source);
}

// The two-phase pipeline's economic payoff (Fig. 4 flow, §5.2 argument):
// the MSG phase screens trading relationships so the ITE phase audits a
// few percent of the ledger instead of every transaction ("one-by-one
// identification"). This harness plants IAT mispricing on the
// relationships that are structurally suspicious, then compares a
// screened audit against a full scan: recall must match while the
// examined volume shrinks by the suspicious-trade factor.

#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_net.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/detector.h"
#include "datagen/plant.h"
#include "datagen/province.h"
#include "fusion/pipeline.h"
#include "ite/audit.h"
#include "ite/ledger.h"

namespace tpiin {
namespace {

int Run(BenchJsonWriter& json, BenchNetSource& source) {
  // The ledger and the planted IAT relationships live in the raw
  // dataset, which a snapshot does not carry — regenerate it either way
  // (seeded, so it matches the snapshot's planted net bit-for-bit);
  // --snapshot replaces only the fusion step.
  ProvinceConfig config = PaperProvinceConfig();
  config.trading_probability = 0.01;
  Result<Province> province = GenerateProvince(config);
  TPIIN_CHECK(province.ok());

  // Plant interest-affiliated trades with known structure; these are the
  // relationships whose transactions will be mispriced.
  Rng rng(config.seed + 1);
  std::vector<PlantedScheme> planted =
      PlantSuspiciousTrades(province->dataset, rng, 200);

  Result<FusionOutput> fused = Status::Internal("unset");
  const Tpiin* net_ptr = nullptr;
  if (source.from_snapshot()) {
    net_ptr = &source.Open();
    json.Record("ite_snapshot_open", "p=0.01", source.open_seconds());
  } else {
    fused = BuildTpiin(province->dataset);
    TPIIN_CHECK(fused.ok());
    source.MaybeWrite(fused->tpiin);
    net_ptr = &fused->tpiin;
  }
  const Tpiin& net = *net_ptr;
  DetectorOptions options;
  options.match.collect_groups = false;
  Result<DetectionResult> detection = DetectSuspiciousGroups(net, options);
  TPIIN_CHECK(detection.ok());

  // MSG-phase suspicious node pairs -> original company pairs.
  std::vector<std::pair<CompanyId, CompanyId>> suspicious_pairs;
  for (const auto& [seller_node, buyer_node] :
       detection->suspicious_trades) {
    for (CompanyId s : net.node(seller_node).company_members) {
      for (CompanyId b : net.node(buyer_node).company_members) {
        suspicious_pairs.emplace_back(s, b);
      }
    }
  }

  // Ledger: every trading relationship carries transactions; planted
  // relationships are transfer-priced below market.
  std::vector<std::pair<CompanyId, CompanyId>> iat_pairs;
  for (const PlantedScheme& scheme : planted) {
    iat_pairs.emplace_back(scheme.seller, scheme.buyer);
  }
  Ledger ledger = GenerateLedger(province->dataset.trades(), iat_pairs);

  std::printf("=== ITE phase: screened audit vs one-by-one scan ===\n\n");
  std::printf("Planted IAT relationships: %zu; ledger: %zu transactions "
              "over %zu relationships\n\n",
              planted.size(), ledger.transactions.size(),
              ledger.num_relations);

  WallTimer timer;
  AuditOptions screened_options;
  AuditReport screened = RunAudit(ledger, suspicious_pairs,
                                  screened_options);
  double screened_s = timer.ElapsedSeconds();

  timer.Restart();
  AuditOptions full_options;
  full_options.examine_all = true;
  AuditReport full = RunAudit(ledger, suspicious_pairs, full_options);
  double full_s = timer.ElapsedSeconds();

  std::printf("MSG-screened audit: %s  [%.3fs]\n",
              screened.Summary().c_str(), screened_s);
  std::printf("Full one-by-one scan: %s  [%.3fs]\n\n",
              full.Summary().c_str(), full_s);
  std::printf("Screening examined %.2f%% of the ledger while keeping "
              "recall %.3f vs full-scan recall %.3f\n",
              100.0 * screened.ExaminedFraction(), screened.Recall(),
              full.Recall());
  TPIIN_CHECK_GE(screened.Recall() + 1e-9, full.Recall());
  json.Record("ite_audit", "screened", screened_s,
              screened.Recall());
  json.Record("ite_audit", "full_scan", full_s, full.Recall());
  json.Record("ite_audit", "examined_fraction", 0,
              screened.ExaminedFraction());
  json.Flush();
  return 0;
}

}  // namespace
}  // namespace tpiin

int main(int argc, char** argv) {
  tpiin::BenchJsonWriter json =
      tpiin::BenchJsonWriter::FromArgs(argc, argv);
  tpiin::BenchNetSource source = tpiin::BenchNetSource::FromArgs(argc, argv);
  return tpiin::Run(json, source);
}

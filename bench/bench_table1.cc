// Reproduces Table 1: "Detecting suspicious groups in a TPIIN over
// various trading probability settings".
//
// Protocol (§5.1): one provincial relationship network (4578 nodes: 776
// directors, 1350 legal persons, 2452 companies — here synthesized at
// the published scale, see DESIGN.md §2), overlaid with twenty random
// trading networks whose per-pair trading probability sweeps 0.002..0.1.
// For every setting the harness reports the paper's columns and verifies
// the accuracy columns against the global-traversal baseline: the
// proposed method must find exactly the baseline's suspicious groups and
// suspicious trading relationships (100%).
//
// Absolute counts depend on the synthetic antecedent network; the shape
// to compare against the paper (see EXPERIMENTS.md): complex > simple by
// roughly 4-5x, counts growing near-linearly in p, accuracy pinned at
// 100%, and a flat ~5% suspicious-trade share.

#include <cstdio>
#include <set>
#include <vector>

#include "bench/bench_json.h"
#include "common/csv.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "core/baseline.h"
#include "core/detector.h"
#include "datagen/province.h"
#include "fusion/pipeline.h"
#include "graph/degree.h"

namespace tpiin {
namespace {

constexpr double kProbabilities[] = {0.002, 0.003, 0.004, 0.005, 0.006,
                                     0.008, 0.010, 0.012, 0.014, 0.016,
                                     0.018, 0.020, 0.030, 0.040, 0.050,
                                     0.060, 0.070, 0.080, 0.090, 0.100};

// Paper Table 1 reference rows (complex, simple, suspicious trades,
// total trades) for side-by-side shape comparison.
struct PaperRow {
  double p;
  double avg_degree;
  long complex_groups;
  long simple_groups;
  long suspicious;
  long total;
};
constexpr PaperRow kPaperRows[] = {
    {0.002, 3.981, 7252, 1507, 611, 11939},
    {0.003, 5.275, 11506, 2460, 881, 17869},
    {0.004, 6.628, 16021, 3390, 1288, 24069},
    {0.005, 7.941, 19375, 3977, 1573, 30094},
    {0.006, 9.240, 23071, 4864, 1839, 36036},
    {0.008, 11.847, 30745, 6287, 2445, 47978},
    {0.010, 14.491, 36702, 7881, 2991, 60117},
    {0.012, 17.163, 44148, 8989, 3619, 72310},
    {0.014, 19.728, 51023, 10776, 4258, 84064},
    {0.016, 22.424, 60777, 12680, 4895, 96403},
    {0.018, 24.965, 67614, 13997, 5514, 108045},
    {0.020, 27.522, 75875, 16103, 6012, 119759},
    {0.030, 40.748, 111885, 23328, 9122, 180401},
    {0.040, 53.793, 149795, 31123, 12126, 240190},
    {0.050, 66.827, 185405, 38501, 15089, 299898},
    {0.060, 79.940, 226187, 47361, 18212, 359975},
    {0.070, 93.011, 261367, 55088, 21214, 419914},
    {0.080, 106.276, 298458, 62627, 24150, 480637},
    {0.090, 119.554, 333271, 69844, 27129, 541489},
    {0.100, 132.759, 372050, 78252, 30288, 602053},
};

// Everything one probability row produces; rows are computed
// concurrently, then emitted in sweep order so the report and artifacts
// are byte-identical at any thread count.
struct RowOutput {
  double avg_degree = 0;
  size_t num_complex = 0;
  size_t num_simple = 0;
  double group_accuracy = 0;
  size_t suspicious_trades = 0;
  size_t total_trades = 0;
  double arc_accuracy = 0;
  double suspicious_percent = 0;
  double detect_seconds = 0;
};

RowOutput MeasureRow(const RawDataset& base_dataset,
                     const ProvinceConfig& config, size_t i) {
  double p = kProbabilities[i];
  // Private dataset copy: SetTrades mutates, and rows run concurrently.
  RawDataset dataset = base_dataset;
  Rng trading_rng(config.seed * 1000 + i);
  dataset.SetTrades(
      GenerateTradingNetwork(config.num_companies, p, trading_rng));

  FusionOptions fusion_options;
  fusion_options.validate_dataset = (i == 0);
  Result<FusionOutput> fused = BuildTpiin(dataset, fusion_options);
  TPIIN_CHECK(fused.ok()) << fused.status().ToString();
  const Tpiin& net = fused->tpiin;

  DetectorOptions options;
  options.match.collect_groups = false;
  Result<DetectionResult> result = DetectSuspiciousGroups(net, options);
  TPIIN_CHECK(result.ok()) << result.status().ToString();

  // Accuracy vs the global-traversal baseline anchored like the
  // proposed method: group counts and the suspicious-arc set must
  // match exactly.
  BaselineOptions baseline_options;
  baseline_options.collect_groups = false;
  BaselineResult baseline = DetectBaseline(net, baseline_options);
  size_t proposed_groups = result->num_simple + result->num_complex;
  size_t baseline_groups = baseline.num_simple + baseline.num_complex;
  RowOutput row;
  row.group_accuracy =
      baseline_groups == 0
          ? 100.0
          : 100.0 * std::min(proposed_groups, baseline_groups) /
                static_cast<double>(baseline_groups);
  std::set<std::pair<NodeId, NodeId>> proposed_arcs(
      result->suspicious_trades.begin(), result->suspicious_trades.end());
  size_t found = 0;
  for (const auto& arc : baseline.suspicious_trades) {
    if (proposed_arcs.count(arc)) ++found;
  }
  row.arc_accuracy = baseline.suspicious_trades.empty()
                         ? 100.0
                         : 100.0 * found /
                               baseline.suspicious_trades.size();
  TPIIN_CHECK_EQ(proposed_groups, baseline_groups);
  TPIIN_CHECK_EQ(proposed_arcs.size(), baseline.suspicious_trades.size());

  row.avg_degree = ComputeDegreeStats(net.graph()).average_degree;
  row.num_complex = result->num_complex;
  row.num_simple = result->num_simple;
  row.suspicious_trades = result->suspicious_trades.size();
  row.total_trades = net.num_trading_arcs();
  row.suspicious_percent = result->SuspiciousTradePercent();
  row.detect_seconds = result->timings.total_seconds;
  return row;
}

int Run(BenchJsonWriter& json, uint32_t num_threads) {
  ProvinceConfig config = PaperProvinceConfig();
  config.generate_trading = false;
  Result<Province> province = GenerateProvince(config);
  TPIIN_CHECK(province.ok()) << province.status().ToString();

  std::printf("=== Table 1: detecting suspicious groups in a TPIIN over "
              "various trading probability settings ===\n");
  std::printf("Province: %s\n", province->dataset.Stats().ToString().c_str());
  const uint32_t threads = ResolveThreadCount(num_threads);
  if (threads > 1) std::printf("Rows measured on %u threads\n", threads);
  std::printf("\n");
  std::printf(
      "%-7s %-8s %-10s %-9s %-8s %-10s %-10s %-8s %-8s\n", "p", "avgdeg",
      "complex", "simple", "grp-acc", "suspTrade", "totTrade", "arc-acc",
      "susp%%");

  // Machine-readable artifact beside the human table (read by
  // EXPERIMENTS.md regeneration and downstream plotting).
  CsvWriter csv("table1.csv");
  csv.WriteRow({"p", "avg_degree", "complex", "simple",
                "suspicious_trades", "total_trades",
                "suspicious_percent", "paper_complex", "paper_simple",
                "paper_suspicious", "paper_total"});

  // The twenty rows are independent (private dataset copy, per-row rng
  // seeded from the row index), so they fan out across the shared pool;
  // outputs are buffered and emitted in sweep order below.
  std::vector<RowOutput> rows(std::size(kProbabilities));
  ThreadPool::Global().ParallelFor(
      rows.size(), threads, [&](size_t i) {
        rows[i] = MeasureRow(province->dataset, config, i);
      });

  for (size_t i = 0; i < rows.size(); ++i) {
    double p = kProbabilities[i];
    const RowOutput& row = rows[i];
    std::printf(
        "%-7.3f %-8.3f %-10zu %-9zu %-7.0f%% %-10zu %-10zu %-7.0f%% "
        "%-8.4f\n",
        p, row.avg_degree, row.num_complex, row.num_simple,
        row.group_accuracy, row.suspicious_trades, row.total_trades,
        row.arc_accuracy, row.suspicious_percent);
    std::printf(
        "  paper %-8.3f %-10ld %-9ld %-7.0f%% %-10ld %-10ld %-7.0f%% "
        "%-8.4f\n",
        kPaperRows[i].avg_degree, kPaperRows[i].complex_groups,
        kPaperRows[i].simple_groups, 100.0, kPaperRows[i].suspicious,
        kPaperRows[i].total, 100.0,
        100.0 * kPaperRows[i].suspicious / kPaperRows[i].total);
    json.Record("table1_detect", StringPrintf("p=%.3f", p),
                row.detect_seconds,
                row.detect_seconds > 0
                    ? row.total_trades / row.detect_seconds
                    : 0);
    csv.WriteRow({StringPrintf("%.3f", p),
                  StringPrintf("%.3f", row.avg_degree),
                  StringPrintf("%zu", row.num_complex),
                  StringPrintf("%zu", row.num_simple),
                  StringPrintf("%zu", row.suspicious_trades),
                  StringPrintf("%zu", row.total_trades),
                  StringPrintf("%.4f", row.suspicious_percent),
                  StringPrintf("%ld", kPaperRows[i].complex_groups),
                  StringPrintf("%ld", kPaperRows[i].simple_groups),
                  StringPrintf("%ld", kPaperRows[i].suspicious),
                  StringPrintf("%ld", kPaperRows[i].total)});
  }
  json.Flush();
  TPIIN_CHECK(csv.Close().ok());
  std::printf(
      "\n(grp-acc / arc-acc: agreement with the global-traversal "
      "baseline; both are asserted to be exact.)\n");
  std::printf("Row data also written to table1.csv\n");
  return 0;
}

}  // namespace
}  // namespace tpiin

int main(int argc, char** argv) {
  tpiin::BenchJsonWriter json =
      tpiin::BenchJsonWriter::FromArgs(argc, argv);
  // Rows are serial by default so per-row timings stay uncontended;
  // --threads N sweeps the twenty probability settings concurrently
  // (identical counts either way, per-row detect timings get noisier).
  return tpiin::Run(json, tpiin::ParseThreadsFlag(argc, argv));
}

// Snapshot plumbing shared by the bench harnesses:
//   --snapshot=PATH        mmap the network from a snapshot file written
//                          by `tpiin build` (or a prior harness run with
//                          --write-snapshot) and skip generate+fuse
//   --write-snapshot=PATH  after fusing, persist the fixture network so
//                          the next run can --snapshot it
// Dataset generation is seeded and deterministic, so a snapshot written
// by one run is bit-compatible with every later run of the same harness;
// harnesses that also need the RawDataset (ledgers, planted schemes)
// still regenerate it and only skip the fusion step.

#ifndef TPIIN_BENCH_BENCH_NET_H_
#define TPIIN_BENCH_BENCH_NET_H_

#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "common/logging.h"
#include "common/timer.h"
#include "snapshot/snapshot.h"

namespace tpiin {

/// Scans argv for `--snapshot PATH` / `--snapshot=PATH`.
inline std::string ParseSnapshotFlag(int argc, char** argv) {
  std::string path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--snapshot=", 0) == 0) {
      path = arg.substr(11);
    } else if (arg == "--snapshot" && i + 1 < argc) {
      path = argv[++i];
    }
  }
  return path;
}

/// Scans argv for `--write-snapshot PATH` / `--write-snapshot=PATH`.
inline std::string ParseWriteSnapshotFlag(int argc, char** argv) {
  std::string path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--write-snapshot=", 0) == 0) {
      path = arg.substr(17);
    } else if (arg == "--write-snapshot" && i + 1 < argc) {
      path = argv[++i];
    }
  }
  return path;
}

/// The harness's network source. When --snapshot was passed, Open()
/// mmaps it (dying on a corrupt file — benches have no Status plumbing)
/// and net() replaces the fused fixture; otherwise the harness fuses as
/// usual and MaybeWrite() honors --write-snapshot.
class BenchNetSource {
 public:
  static BenchNetSource FromArgs(int argc, char** argv) {
    BenchNetSource source;
    source.snapshot_path_ = ParseSnapshotFlag(argc, argv);
    source.write_path_ = ParseWriteSnapshotFlag(argc, argv);
    return source;
  }

  bool from_snapshot() const { return !snapshot_path_.empty(); }
  bool write_requested() const { return !write_path_.empty(); }
  const std::string& snapshot_path() const { return snapshot_path_; }
  double open_seconds() const { return open_seconds_; }

  const Tpiin& Open() {
    TPIIN_CHECK(from_snapshot());
    WallTimer timer;
    Result<std::unique_ptr<SnapshotView>> view =
        SnapshotView::Open(snapshot_path_);
    TPIIN_CHECK(view.ok()) << view.status().ToString();
    open_seconds_ = timer.ElapsedSeconds();
    view_ = std::move(*view);
    std::printf("snapshot %s mapped in %.3f ms (%llu bytes)\n",
                snapshot_path_.c_str(), open_seconds_ * 1e3,
                static_cast<unsigned long long>(view_->file_size()));
    return view_->net();
  }

  void MaybeWrite(const Tpiin& net) {
    if (write_path_.empty()) return;
    Status status = WriteSnapshot(net, write_path_);
    TPIIN_CHECK(status.ok()) << status.ToString();
    std::printf("fixture snapshot written to %s (re-run with "
                "--snapshot=%s to skip fusion)\n",
                write_path_.c_str(), write_path_.c_str());
  }

 private:
  std::string snapshot_path_;
  std::string write_path_;
  std::unique_ptr<SnapshotView> view_;
  double open_seconds_ = 0;
};

}  // namespace tpiin

#endif  // TPIIN_BENCH_BENCH_NET_H_

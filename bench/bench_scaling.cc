// Quantifies the efficiency claim of §5.2: the proposed method
// (segmentation + patterns tree + component-pattern matching) against
// the global traversing baseline, across network sizes and trading
// probabilities. The paper reports that the proposed method "greatly
// improves the efficiency" — the shape to reproduce is a widening gap as
// either scale axis grows, with identical findings (checked here).

#include <cstdio>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_net.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/baseline.h"
#include "core/detector.h"
#include "datagen/province.h"
#include "fusion/pipeline.h"

namespace tpiin {
namespace {

struct Row {
  uint32_t companies;
  double p;
  double fuse_s;
  double detect_s;
  double baseline_root_s;
  double baseline_all_s;
  double baseline_naive_s;
  size_t groups;
  size_t arcs;
};

// Timings that only need the fused net: Algorithm 1 plus the baselines.
// `run_naive` gates the quadratic formulation (see Measure).
void MeasureDetectors(const Tpiin& net, bool run_naive, Row* row) {
  WallTimer timer;
  DetectorOptions options;
  options.match.collect_groups = false;
  Result<DetectionResult> result = DetectSuspiciousGroups(net, options);
  TPIIN_CHECK(result.ok());
  row->detect_s = timer.ElapsedSeconds();
  row->groups = result->num_simple + result->num_complex;
  row->arcs = result->suspicious_trades.size();

  BaselineOptions root_options;
  root_options.collect_groups = false;
  timer.Restart();
  BaselineResult root = DetectBaseline(net, root_options);
  row->baseline_root_s = timer.ElapsedSeconds();
  TPIIN_CHECK_EQ(root.num_simple + root.num_complex, row->groups);
  TPIIN_CHECK_EQ(root.suspicious_trades.size(), row->arcs);

  BaselineOptions all_options;
  all_options.anchor = BaselineAnchor::kAllNodes;
  all_options.collect_groups = false;
  timer.Restart();
  BaselineResult all = DetectBaseline(net, all_options);
  row->baseline_all_s = timer.ElapsedSeconds();
  TPIIN_CHECK_EQ(all.suspicious_trades.size(), row->arcs);

  if (run_naive) {
    BaselineOptions naive_options;
    naive_options.naive_pairing = true;
    naive_options.collect_groups = false;
    timer.Restart();
    BaselineResult naive = DetectBaseline(net, naive_options);
    row->baseline_naive_s = timer.ElapsedSeconds();
    TPIIN_CHECK_EQ(naive.num_simple + naive.num_complex, row->groups);
  }
}

Row Measure(uint32_t companies, double p, uint64_t seed) {
  ProvinceConfig config = PaperProvinceConfig(seed);
  if (companies != config.num_companies) {
    // Scale the population and conglomerate sizes proportionally.
    double scale = static_cast<double>(companies) / config.num_companies;
    config.num_companies = companies;
    config.num_legal_persons = std::max<uint32_t>(
        4, static_cast<uint32_t>(config.num_legal_persons * scale));
    config.num_directors = std::max<uint32_t>(
        2, static_cast<uint32_t>(config.num_directors * scale));
    for (uint32_t& s : config.large_group_sizes) {
      s = std::max<uint32_t>(4, static_cast<uint32_t>(s * scale));
    }
  }
  config.trading_probability = p;
  Result<Province> province = GenerateProvince(config);
  TPIIN_CHECK(province.ok()) << province.status().ToString();

  Row row{companies, p, 0, 0, 0, 0, 0, 0, 0};
  WallTimer timer;
  Result<FusionOutput> fused = BuildTpiin(province->dataset);
  TPIIN_CHECK(fused.ok()) << fused.status().ToString();
  row.fuse_s = timer.ElapsedSeconds();
  const Tpiin& net = fused->tpiin;

  // The naive pairwise-check formulation the paper describes is
  // quadratic in trails per anchor, so only measured on bounded
  // instances.
  const bool run_naive =
      static_cast<uint64_t>(companies) * static_cast<uint64_t>(p * 1e4) <=
      2452ull * 100ull;
  MeasureDetectors(net, run_naive, &row);
  return row;
}

int Run(BenchJsonWriter& json, uint32_t num_threads,
        BenchNetSource& source) {
  std::printf("=== Efficiency: proposed method vs global traversal "
              "(§5.2) ===\n\n");
  if (source.from_snapshot()) {
    // Snapshot mode replaces the generate->fuse ladder with one row on
    // the pre-built net: mmap open, then Algorithm 1 vs the baselines.
    const Tpiin& net = source.Open();
    Row row{net.NumNodes(), 0, source.open_seconds(), 0, 0, 0, 0, 0, 0};
    MeasureDetectors(net, /*run_naive=*/false, &row);
    std::printf("%-10s %-9s %-9s %-11s %-11s %-9s %-8s\n", "nodes",
                "open(s)", "Alg1(s)", "base-root(s)", "base-all(s)",
                "groups", "arcs");
    std::printf("%-10u %-9.4f %-9.3f %-11.3f %-11.3f %-9zu %zu\n",
                net.NumNodes(), row.fuse_s, row.detect_s,
                row.baseline_root_s, row.baseline_all_s, row.groups,
                row.arcs);
    json.Record("scaling_snapshot_open", "snapshot", row.fuse_s);
    json.Record("detect", "snapshot", row.detect_s,
                row.detect_s > 0 ? row.groups / row.detect_s : 0);
    json.Record("baseline_root", "snapshot", row.baseline_root_s);
    json.Record("baseline_all", "snapshot", row.baseline_all_s);
    json.Flush();
    return 0;
  }
  if (source.write_requested()) {
    // Persist the paper-scale rung's net so a later --snapshot run can
    // skip datagen and fusion entirely.
    ProvinceConfig config = PaperProvinceConfig(/*seed=*/20170402);
    config.trading_probability = 0.01;
    Result<Province> province = GenerateProvince(config);
    TPIIN_CHECK(province.ok()) << province.status().ToString();
    Result<FusionOutput> fused = BuildTpiin(province->dataset);
    TPIIN_CHECK(fused.ok()) << fused.status().ToString();
    source.MaybeWrite(fused->tpiin);
  }
  const uint32_t threads = ResolveThreadCount(num_threads);
  if (threads > 1) {
    std::printf("Ladder measured on %u threads (timings contended; use "
                "--threads=1 for clean numbers)\n\n", threads);
  }
  std::printf("%-10s %-7s %-8s %-9s %-11s %-11s %-12s %-9s %-9s %-8s\n",
              "companies", "p", "fuse(s)", "Alg1(s)", "base-root(s)",
              "base-all(s)", "base-naive(s)", "speedup", "groups", "arcs");

  std::vector<std::pair<uint32_t, double>> settings = {
      {300, 0.01},  {600, 0.01},  {1200, 0.01}, {2452, 0.01},
      {2452, 0.002}, {2452, 0.02}, {2452, 0.05},
  };
  // Ladder rungs are independent (each generates its own province from a
  // fixed seed), so they fan out across the shared pool; rows are
  // buffered and reported in ladder order, identical at any thread count.
  std::vector<Row> rows(settings.size());
  ThreadPool::Global().ParallelFor(
      settings.size(), threads, [&](size_t i) {
        rows[i] = Measure(settings[i].first, settings[i].second,
                          /*seed=*/20170402);
      });
  for (const Row& row : rows) {
    double reference = row.baseline_naive_s > 0 ? row.baseline_naive_s
                                                : row.baseline_all_s;
    std::printf(
        "%-10u %-7.3f %-8.3f %-9.3f %-11.3f %-11.3f %-12.3f %-8.1fx "
        "%-9zu %zu\n",
        row.companies, row.p, row.fuse_s, row.detect_s,
        row.baseline_root_s, row.baseline_all_s, row.baseline_naive_s,
        row.detect_s > 0 ? reference / row.detect_s : 0.0, row.groups,
        row.arcs);
    std::string case_name =
        StringPrintf("companies=%u,p=%.3f", row.companies, row.p);
    json.Record("fuse", case_name, row.fuse_s);
    json.Record("detect", case_name, row.detect_s,
                row.detect_s > 0 ? row.groups / row.detect_s : 0);
    json.Record("baseline_root", case_name, row.baseline_root_s);
    json.Record("baseline_all", case_name, row.baseline_all_s);
    if (row.baseline_naive_s > 0) {
      json.Record("baseline_naive", case_name, row.baseline_naive_s);
    }
  }
  json.Flush();
  std::printf("\n(speedup = slowest measured baseline / Algorithm 1; "
              "findings are asserted identical. base-naive is the "
              "paper's literal 'check every trail pair' formulation, "
              "skipped where it would dominate the harness runtime.)\n");
  return 0;
}

}  // namespace
}  // namespace tpiin

int main(int argc, char** argv) {
  tpiin::BenchJsonWriter json =
      tpiin::BenchJsonWriter::FromArgs(argc, argv);
  tpiin::BenchNetSource source = tpiin::BenchNetSource::FromArgs(argc, argv);
  return tpiin::Run(json, tpiin::ParseThreadsFlag(argc, argv), source);
}

// Quantifies the efficiency claim of §5.2: the proposed method
// (segmentation + patterns tree + component-pattern matching) against
// the global traversing baseline, across network sizes and trading
// probabilities. The paper reports that the proposed method "greatly
// improves the efficiency" — the shape to reproduce is a widening gap as
// either scale axis grows, with identical findings (checked here).
//
// Two extra modes take the scale axis far past what fits in memory:
//   --unsharded   CSV -> load -> fuse -> detect in one process per rung
//   --sharded     CSV -> shard build/detect/merge (src/shard), the
//                 out-of-core path whose peak RSS is O(largest shard)
// Each rung streams its province to disk (StreamProvinceCsv), runs the
// pipeline, records wall time per stage and the process peak RSS, then
// deletes the rung's work directory. ru_maxrss is monotone over a
// process lifetime, so the two modes must be separate invocations (the
// harness refuses --sharded --unsharded together) and rungs ascend so
// each rung's recorded peak is dominated by that rung's own work.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_net.h"
#include "common/atomic_file.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/baseline.h"
#include "core/detector.h"
#include "core/scoring.h"
#include "datagen/province.h"
#include "datagen/stream.h"
#include "fusion/pipeline.h"
#include "io/dataset_csv.h"
#include "obs/rss.h"
#include "shard/build.h"
#include "shard/canonical.h"
#include "shard/detect.h"
#include "shard/merge.h"

namespace tpiin {
namespace {

struct Row {
  uint32_t companies;
  double p;
  double fuse_s;
  double detect_s;
  double baseline_root_s;
  double baseline_all_s;
  double baseline_naive_s;
  size_t groups;
  size_t arcs;
};

// Timings that only need the fused net: Algorithm 1 plus the baselines.
// `run_naive` gates the quadratic formulation (see Measure).
void MeasureDetectors(const Tpiin& net, bool run_naive, Row* row) {
  WallTimer timer;
  DetectorOptions options;
  options.match.collect_groups = false;
  Result<DetectionResult> result = DetectSuspiciousGroups(net, options);
  TPIIN_CHECK(result.ok());
  row->detect_s = timer.ElapsedSeconds();
  row->groups = result->num_simple + result->num_complex;
  row->arcs = result->suspicious_trades.size();

  BaselineOptions root_options;
  root_options.collect_groups = false;
  timer.Restart();
  BaselineResult root = DetectBaseline(net, root_options);
  row->baseline_root_s = timer.ElapsedSeconds();
  TPIIN_CHECK_EQ(root.num_simple + root.num_complex, row->groups);
  TPIIN_CHECK_EQ(root.suspicious_trades.size(), row->arcs);

  BaselineOptions all_options;
  all_options.anchor = BaselineAnchor::kAllNodes;
  all_options.collect_groups = false;
  timer.Restart();
  BaselineResult all = DetectBaseline(net, all_options);
  row->baseline_all_s = timer.ElapsedSeconds();
  TPIIN_CHECK_EQ(all.suspicious_trades.size(), row->arcs);

  if (run_naive) {
    BaselineOptions naive_options;
    naive_options.naive_pairing = true;
    naive_options.collect_groups = false;
    timer.Restart();
    BaselineResult naive = DetectBaseline(net, naive_options);
    row->baseline_naive_s = timer.ElapsedSeconds();
    TPIIN_CHECK_EQ(naive.num_simple + naive.num_complex, row->groups);
  }
}

Row Measure(uint32_t companies, double p, uint64_t seed) {
  ProvinceConfig config = PaperProvinceConfig(seed);
  config = ScaleConfig(
      config, static_cast<double>(companies) / config.num_companies);
  config.trading_probability = p;
  Result<Province> province = GenerateProvince(config);
  TPIIN_CHECK(province.ok()) << province.status().ToString();

  Row row{companies, p, 0, 0, 0, 0, 0, 0, 0};
  WallTimer timer;
  Result<FusionOutput> fused = BuildTpiin(province->dataset);
  TPIIN_CHECK(fused.ok()) << fused.status().ToString();
  row.fuse_s = timer.ElapsedSeconds();
  const Tpiin& net = fused->tpiin;

  // The naive pairwise-check formulation the paper describes is
  // quadratic in trails per anchor, so only measured on bounded
  // instances.
  const bool run_naive =
      static_cast<uint64_t>(companies) * static_cast<uint64_t>(p * 1e4) <=
      2452ull * 100ull;
  MeasureDetectors(net, run_naive, &row);
  return row;
}

struct OutOfCoreOptions {
  bool sharded = false;
  bool unsharded = false;
  uint32_t shards = 16;
  uint32_t threads = 1;
  /// 0 = mode default: 1,000,416 sharded (factor 408 — the million-
  /// company acceptance rung), 245,200 unsharded (factor 100 — past
  /// that the in-memory dataset is the point being avoided).
  uint64_t max_companies = 0;
  std::string workdir = "/tmp/tpiin-bench-scaling";
  bool keep_work = false;
};

OutOfCoreOptions ParseOutOfCore(int argc, char** argv) {
  OutOfCoreOptions opt;
  auto u64_flag = [&](const std::string& arg, const char* prefix,
                      uint64_t* out) {
    if (arg.rfind(prefix, 0) != 0) return false;
    *out = std::strtoull(arg.c_str() + std::strlen(prefix), nullptr, 10);
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    uint64_t value = 0;
    if (arg == "--sharded") {
      opt.sharded = true;
    } else if (arg == "--unsharded") {
      opt.unsharded = true;
    } else if (u64_flag(arg, "--shards=", &value)) {
      opt.shards = static_cast<uint32_t>(value);
    } else if (u64_flag(arg, "--max-companies=", &value)) {
      opt.max_companies = value;
    } else if (arg.rfind("--workdir=", 0) == 0) {
      opt.workdir = arg.substr(std::strlen("--workdir="));
    } else if (arg == "--keep-work") {
      opt.keep_work = true;
    }
  }
  return opt;
}

// One out-of-core rung ladder. Factors multiply the paper population
// (2452 companies); the trading probability divides by the factor so the
// expected trading-arc count grows linearly with the population instead
// of quadratically — per-company trade volume, not pair density, is what
// a bigger province holds constant.
int RunOutOfCore(BenchJsonWriter& json, const OutOfCoreOptions& opt) {
  namespace fs = std::filesystem;
  const bool sharded = opt.sharded;
  const char* mode = sharded ? "sharded" : "unsharded";
  const uint64_t max_companies =
      opt.max_companies != 0 ? opt.max_companies
                             : (sharded ? 1000416ull : 245200ull);
  std::printf("=== Out-of-core ladder (%s, up to %llu companies%s) ===\n\n",
              mode, static_cast<unsigned long long>(max_companies),
              sharded ? StringPrintf(", %u shards", opt.shards).c_str()
                      : "");
  std::printf("%-10s %-10s %-8s %-9s %-9s %-9s %-9s %-9s %-8s\n",
              "companies", "trades", "gen(s)",
              sharded ? "build(s)" : "load(s)",
              sharded ? "detect(s)" : "fuse(s)",
              sharded ? "merge(s)" : "detect(s)", "total(s)", "rss(MB)",
              "groups");

  const double factors[] = {1, 10, 100, 408};
  for (double factor : factors) {
    ProvinceConfig config =
        ScaleConfig(PaperProvinceConfig(/*seed=*/20170402), factor);
    if (config.num_companies > max_companies) break;
    config.trading_probability /= factor;

    const std::string rung_dir =
        opt.workdir + StringPrintf("/rung-%u", config.num_companies);
    const std::string data_dir = rung_dir + "/data";
    std::error_code ec;
    fs::remove_all(rung_dir, ec);
    fs::create_directories(data_dir, ec);
    TPIIN_CHECK(!ec) << "cannot create " << data_dir;
    const std::string case_name =
        StringPrintf("companies=%u", config.num_companies);

    WallTimer total;
    WallTimer timer;
    Result<StreamStats> stream = StreamProvinceCsv(config, data_dir);
    TPIIN_CHECK(stream.ok()) << stream.status().ToString();
    const double gen_s = timer.ElapsedSeconds();
    json.Record(StringPrintf("%s_gen", mode), case_name, gen_s,
                gen_s > 0 ? stream->trades / gen_s : 0);

    double stage_s[3] = {0, 0, 0};
    size_t groups = 0;
    if (sharded) {
      const std::string shard_dir = rung_dir + "/shards";
      ShardBuildOptions build;
      build.num_shards = opt.shards;
      build.num_threads = opt.threads;
      timer.Restart();
      Result<ShardManifest> manifest =
          BuildShards(data_dir, shard_dir, build);
      TPIIN_CHECK(manifest.ok()) << manifest.status().ToString();
      stage_s[0] = timer.ElapsedSeconds();
      ShardDetectOptions detect;
      detect.num_threads = opt.threads;
      timer.Restart();
      Result<ShardDetectStats> dstats = DetectShards(shard_dir, detect);
      TPIIN_CHECK(dstats.ok()) << dstats.status().ToString();
      stage_s[1] = timer.ElapsedSeconds();
      timer.Restart();
      Result<ShardMergeStats> mstats =
          MergeShards(shard_dir, rung_dir + "/merged.txt");
      TPIIN_CHECK(mstats.ok()) << mstats.status().ToString();
      stage_s[2] = timer.ElapsedSeconds();
      groups = mstats->summary.complex_groups +
               mstats->summary.simple_groups +
               mstats->summary.circle_groups;
      json.Record("sharded_build", case_name, stage_s[0]);
      json.Record("sharded_detect", case_name, stage_s[1]);
      json.Record("sharded_merge", case_name, stage_s[2]);
    } else {
      timer.Restart();
      Result<RawDataset> dataset = LoadDatasetCsv(data_dir);
      TPIIN_CHECK(dataset.ok()) << dataset.status().ToString();
      stage_s[0] = timer.ElapsedSeconds();
      timer.Restart();
      Result<FusionOutput> fused = BuildTpiin(*dataset);
      TPIIN_CHECK(fused.ok()) << fused.status().ToString();
      stage_s[1] = timer.ElapsedSeconds();
      const Tpiin& net = fused->tpiin;
      DetectorOptions options;
      options.num_threads = opt.threads;
      timer.Restart();
      Result<DetectionResult> detection =
          DetectSuspiciousGroups(net, options);
      TPIIN_CHECK(detection.ok()) << detection.status().ToString();
      ScoringResult scoring = ScoreDetection(net, *detection);
      Status written = WriteFileAtomic(
          rung_dir + "/ranked.txt",
          RenderCanonicalReport(
              BuildCanonicalReport(net, *detection, scoring)));
      TPIIN_CHECK(written.ok()) << written.ToString();
      stage_s[2] = timer.ElapsedSeconds();
      groups = detection->num_simple + detection->num_complex +
               detection->num_cycle_groups;
      json.Record("unsharded_load", case_name, stage_s[0]);
      json.Record("unsharded_fuse", case_name, stage_s[1]);
      json.Record("unsharded_detect", case_name, stage_s[2]);
    }

    const double total_s = total.ElapsedSeconds();
    const double rss_mb = PeakRssBytes() / (1024.0 * 1024.0);
    // Peak RSS rides the `seconds` field so bench_compare's
    // lower-is-better gate applies to memory exactly as to time.
    json.Record(StringPrintf("%s_total", mode), case_name, total_s,
                total_s > 0 ? config.num_companies / total_s : 0);
    json.Record(StringPrintf("%s_peak_rss_mb", mode), case_name, rss_mb);
    std::printf(
        "%-10u %-10llu %-8.2f %-9.2f %-9.2f %-9.2f %-9.2f %-9.1f %zu\n",
        config.num_companies,
        static_cast<unsigned long long>(stream->trades), gen_s, stage_s[0],
        stage_s[1], stage_s[2], total_s, rss_mb, groups);
    std::fflush(stdout);
    if (!opt.keep_work) fs::remove_all(rung_dir, ec);
  }
  if (!opt.keep_work) {
    std::error_code ec;
    fs::remove(opt.workdir, ec);  // Only if now empty.
  }
  json.Flush();
  std::printf(
      "\n(peak RSS is the process high-water mark after the rung "
      "completes; rungs ascend, so each value is dominated by its own "
      "rung. Compare --sharded against --unsharded from separate "
      "invocations — ru_maxrss never decreases within one process.)\n");
  return 0;
}

int Run(BenchJsonWriter& json, uint32_t num_threads,
        BenchNetSource& source) {
  std::printf("=== Efficiency: proposed method vs global traversal "
              "(§5.2) ===\n\n");
  if (source.from_snapshot()) {
    // Snapshot mode replaces the generate->fuse ladder with one row on
    // the pre-built net: mmap open, then Algorithm 1 vs the baselines.
    const Tpiin& net = source.Open();
    Row row{net.NumNodes(), 0, source.open_seconds(), 0, 0, 0, 0, 0, 0};
    MeasureDetectors(net, /*run_naive=*/false, &row);
    std::printf("%-10s %-9s %-9s %-11s %-11s %-9s %-8s\n", "nodes",
                "open(s)", "Alg1(s)", "base-root(s)", "base-all(s)",
                "groups", "arcs");
    std::printf("%-10u %-9.4f %-9.3f %-11.3f %-11.3f %-9zu %zu\n",
                net.NumNodes(), row.fuse_s, row.detect_s,
                row.baseline_root_s, row.baseline_all_s, row.groups,
                row.arcs);
    json.Record("scaling_snapshot_open", "snapshot", row.fuse_s);
    json.Record("detect", "snapshot", row.detect_s,
                row.detect_s > 0 ? row.groups / row.detect_s : 0);
    json.Record("baseline_root", "snapshot", row.baseline_root_s);
    json.Record("baseline_all", "snapshot", row.baseline_all_s);
    json.Flush();
    return 0;
  }
  if (source.write_requested()) {
    // Persist the paper-scale rung's net so a later --snapshot run can
    // skip datagen and fusion entirely.
    ProvinceConfig config = PaperProvinceConfig(/*seed=*/20170402);
    config.trading_probability = 0.01;
    Result<Province> province = GenerateProvince(config);
    TPIIN_CHECK(province.ok()) << province.status().ToString();
    Result<FusionOutput> fused = BuildTpiin(province->dataset);
    TPIIN_CHECK(fused.ok()) << fused.status().ToString();
    source.MaybeWrite(fused->tpiin);
  }
  const uint32_t threads = ResolveThreadCount(num_threads);
  if (threads > 1) {
    std::printf("Ladder measured on %u threads (timings contended; use "
                "--threads=1 for clean numbers)\n\n", threads);
  }
  std::printf("%-10s %-7s %-8s %-9s %-11s %-11s %-12s %-9s %-9s %-8s\n",
              "companies", "p", "fuse(s)", "Alg1(s)", "base-root(s)",
              "base-all(s)", "base-naive(s)", "speedup", "groups", "arcs");

  std::vector<std::pair<uint32_t, double>> settings = {
      {300, 0.01},  {600, 0.01},  {1200, 0.01}, {2452, 0.01},
      {2452, 0.002}, {2452, 0.02}, {2452, 0.05},
  };
  // Ladder rungs are independent (each generates its own province from a
  // fixed seed), so they fan out across the shared pool; rows are
  // buffered and reported in ladder order, identical at any thread count.
  std::vector<Row> rows(settings.size());
  ThreadPool::Global().ParallelFor(
      settings.size(), threads, [&](size_t i) {
        rows[i] = Measure(settings[i].first, settings[i].second,
                          /*seed=*/20170402);
      });
  for (const Row& row : rows) {
    double reference = row.baseline_naive_s > 0 ? row.baseline_naive_s
                                                : row.baseline_all_s;
    std::printf(
        "%-10u %-7.3f %-8.3f %-9.3f %-11.3f %-11.3f %-12.3f %-8.1fx "
        "%-9zu %zu\n",
        row.companies, row.p, row.fuse_s, row.detect_s,
        row.baseline_root_s, row.baseline_all_s, row.baseline_naive_s,
        row.detect_s > 0 ? reference / row.detect_s : 0.0, row.groups,
        row.arcs);
    std::string case_name =
        StringPrintf("companies=%u,p=%.3f", row.companies, row.p);
    json.Record("fuse", case_name, row.fuse_s);
    json.Record("detect", case_name, row.detect_s,
                row.detect_s > 0 ? row.groups / row.detect_s : 0);
    json.Record("baseline_root", case_name, row.baseline_root_s);
    json.Record("baseline_all", case_name, row.baseline_all_s);
    if (row.baseline_naive_s > 0) {
      json.Record("baseline_naive", case_name, row.baseline_naive_s);
    }
  }
  json.Flush();
  std::printf("\n(speedup = slowest measured baseline / Algorithm 1; "
              "findings are asserted identical. base-naive is the "
              "paper's literal 'check every trail pair' formulation, "
              "skipped where it would dominate the harness runtime.)\n");
  return 0;
}

}  // namespace
}  // namespace tpiin

int main(int argc, char** argv) {
  tpiin::BenchJsonWriter json =
      tpiin::BenchJsonWriter::FromArgs(argc, argv);
  tpiin::OutOfCoreOptions out_of_core =
      tpiin::ParseOutOfCore(argc, argv);
  if (out_of_core.sharded && out_of_core.unsharded) {
    std::fprintf(stderr,
                 "--sharded and --unsharded need separate processes: "
                 "ru_maxrss is monotone, one run would contaminate the "
                 "other's peak\n");
    return 2;
  }
  if (out_of_core.sharded || out_of_core.unsharded) {
    out_of_core.threads = tpiin::ParseThreadsFlag(argc, argv);
    return tpiin::RunOutOfCore(json, out_of_core);
  }
  tpiin::BenchNetSource source = tpiin::BenchNetSource::FromArgs(argc, argv);
  return tpiin::Run(json, tpiin::ParseThreadsFlag(argc, argv), source);
}

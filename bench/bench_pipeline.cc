// End-to-end pipeline benchmark: CSV tables on disk -> fused TPIIN ->
// suspicious groups, swept over worker-thread counts.
//
// This is the serving-shaped number the parallel work targets: one
// full pass of ingestion (LoadDatasetCsv), fusion (BuildTpiin with the
// multi-threaded stage schedule) and mining (DetectSuspiciousGroups
// with the per-subTPIIN worker fan-out plus a persistent ArenaPool).
// Findings are asserted identical across every thread count — the
// parallel schedule is bit-for-bit the serial algorithm — so the sweep
// isolates pure wall-clock scaling.
//
// A second sweep measures the serve-ready path: the fused TPIIN is
// persisted once as a binary snapshot (`tpiin build`), then every pass
// is mmap open + detect — no ingest, no fusion. The headline record
// `pipeline_snapshot_open_speedup` is CSV ingest+fusion seconds divided
// by snapshot open seconds (the acceptance gate asks for >= 10x).
//
// Flags: --json <path> for machine-readable records (one per thread
// count, metric = best-of-N seconds for the whole CSV->groups pass),
// --threads N to append one extra rung to the default 1/2/4/8 ladder,
// --iters N to change the best-of count (default 3), --snapshot PATH to
// skip the CSV sweep entirely and run only the snapshot rungs against
// an existing file.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/bench_net.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "core/arena_pool.h"
#include "core/detector.h"
#include "datagen/province.h"
#include "fusion/pipeline.h"
#include "io/dataset_csv.h"
#include "snapshot/snapshot.h"

namespace tpiin {
namespace {

struct PassResult {
  double load_s = 0;
  double fuse_s = 0;
  double detect_s = 0;
  size_t groups = 0;
  size_t suspicious_arcs = 0;

  double total() const { return load_s + fuse_s + detect_s; }
};

PassResult RunPass(const std::string& csv_dir, uint32_t threads,
                   ArenaPool* pool) {
  PassResult pass;
  WallTimer timer;
  Result<RawDataset> dataset = LoadDatasetCsv(csv_dir);
  TPIIN_CHECK(dataset.ok()) << dataset.status().ToString();
  pass.load_s = timer.ElapsedSeconds();

  FusionOptions fusion_options;
  fusion_options.num_threads = threads;
  timer.Restart();
  Result<FusionOutput> fused = BuildTpiin(*dataset, fusion_options);
  TPIIN_CHECK(fused.ok()) << fused.status().ToString();
  pass.fuse_s = timer.ElapsedSeconds();

  DetectorOptions options;
  options.match.collect_groups = false;
  options.num_threads = threads;
  options.arena_pool = pool;
  timer.Restart();
  Result<DetectionResult> result =
      DetectSuspiciousGroups(fused->tpiin, options);
  TPIIN_CHECK(result.ok()) << result.status().ToString();
  pass.detect_s = timer.ElapsedSeconds();
  pass.groups = result->TotalGroups();
  pass.suspicious_arcs = result->suspicious_trades.size();
  return pass;
}

// One pass of the serve-ready path: mmap the snapshot, detect. The view
// is opened (and unmapped) every pass — the open cost is the number
// under test.
struct SnapshotPass {
  double open_s = 0;
  double detect_s = 0;
  size_t groups = 0;
  size_t suspicious_arcs = 0;

  double total() const { return open_s + detect_s; }
};

SnapshotPass RunSnapshotPass(const std::string& snapshot_path,
                             uint32_t threads, ArenaPool* pool) {
  SnapshotPass pass;
  WallTimer timer;
  Result<std::unique_ptr<SnapshotView>> view =
      SnapshotView::Open(snapshot_path);
  TPIIN_CHECK(view.ok()) << view.status().ToString();
  pass.open_s = timer.ElapsedSeconds();

  DetectorOptions options;
  options.match.collect_groups = false;
  options.num_threads = threads;
  options.arena_pool = pool;
  timer.Restart();
  Result<DetectionResult> result =
      DetectSuspiciousGroups((*view)->net(), options);
  TPIIN_CHECK(result.ok()) << result.status().ToString();
  pass.detect_s = timer.ElapsedSeconds();
  pass.groups = result->TotalGroups();
  pass.suspicious_arcs = result->suspicious_trades.size();
  return pass;
}

int Run(BenchJsonWriter& json, uint32_t extra_threads, uint32_t iters,
        const std::string& external_snapshot) {
  std::vector<uint32_t> ladder = {1, 2, 4, 8};
  if (extra_threads > 1 &&
      std::find(ladder.begin(), ladder.end(), extra_threads) ==
          ladder.end()) {
    ladder.push_back(extra_threads);
  }

  ArenaPool pool;
  std::string snapshot_path = external_snapshot;
  double serial_cold_start_s = 0;  // Serial ingest+fusion, best pass.
  size_t reference_groups = 0;
  size_t reference_arcs = 0;
  bool have_reference = false;

  if (external_snapshot.empty()) {
    ProvinceConfig config = PaperProvinceConfig();
    config.trading_probability = 0.02;
    Result<Province> province = GenerateProvince(config);
    TPIIN_CHECK(province.ok()) << province.status().ToString();

    const std::string csv_dir = "bench_pipeline_csv";
    std::error_code ec;
    std::filesystem::create_directories(csv_dir, ec);
    TPIIN_CHECK(!ec) << "cannot create " << csv_dir;
    TPIIN_CHECK(SaveDatasetCsv(csv_dir, province->dataset).ok());

    std::printf("=== End-to-end pipeline: CSV -> TPIIN -> groups ===\n");
    std::printf("Dataset: %s (trading p=%.3f), %u hardware thread(s)\n\n",
                province->dataset.Stats().ToString().c_str(),
                config.trading_probability, ResolveThreadCount(0));
    std::printf("%-8s %-9s %-9s %-10s %-10s %-9s %-9s\n", "threads",
                "load(s)", "fuse(s)", "detect(s)", "total(s)", "speedup",
                "groups");

    double serial_total = 0;
    for (size_t rung = 0; rung < ladder.size(); ++rung) {
      const uint32_t threads = ladder[rung];
      PassResult best;
      for (uint32_t it = 0; it < iters; ++it) {
        PassResult pass = RunPass(csv_dir, threads, &pool);
        if (it == 0 || pass.total() < best.total()) best = pass;
        // The parallel schedule must reproduce the serial findings
        // exactly, every iteration, at every thread count.
        if (rung == 0 && it == 0) {
          reference_groups = pass.groups;
          reference_arcs = pass.suspicious_arcs;
          have_reference = true;
        }
        TPIIN_CHECK_EQ(pass.groups, reference_groups);
        TPIIN_CHECK_EQ(pass.suspicious_arcs, reference_arcs);
      }
      if (rung == 0) {
        serial_total = best.total();
        serial_cold_start_s = best.load_s + best.fuse_s;
      }
      const double speedup =
          best.total() > 0 ? serial_total / best.total() : 0.0;
      std::printf("%-8u %-9.3f %-9.3f %-10.3f %-10.3f %-9s %zu\n", threads,
                  best.load_s, best.fuse_s, best.detect_s, best.total(),
                  StringPrintf("%.2fx", speedup).c_str(), best.groups);
      const std::string case_name = StringPrintf("threads=%u", threads);
      json.Record("pipeline_csv_to_groups", case_name, best.total(),
                  best.total() > 0 ? reference_arcs / best.total() : 0);
      json.Record("pipeline_fuse", case_name, best.fuse_s);
      json.Record("pipeline_detect", case_name, best.detect_s);
    }

    // Persist the fused TPIIN once (the `tpiin build` step) so the
    // snapshot sweep below pays only mmap open + detect per pass.
    Result<RawDataset> dataset = LoadDatasetCsv(csv_dir);
    TPIIN_CHECK(dataset.ok()) << dataset.status().ToString();
    Result<FusionOutput> fused = BuildTpiin(*dataset);
    TPIIN_CHECK(fused.ok()) << fused.status().ToString();
    snapshot_path = "bench_pipeline.snap";
    WallTimer timer;
    Status written = WriteSnapshot(fused->tpiin, snapshot_path);
    TPIIN_CHECK(written.ok()) << written.ToString();
    const double build_s = timer.ElapsedSeconds();
    std::printf("\nsnapshot built once in %.3fs -> %s\n", build_s,
                snapshot_path.c_str());
    json.Record("pipeline_snapshot_build", "threads=1", build_s);
  }

  std::printf("\n=== Serve-ready path: snapshot mmap -> groups ===\n");
  std::printf("%-8s %-10s %-10s %-10s %-9s\n", "threads", "open(ms)",
              "detect(s)", "total(s)", "groups");
  double serial_open_s = 0;
  for (size_t rung = 0; rung < ladder.size(); ++rung) {
    const uint32_t threads = ladder[rung];
    SnapshotPass best;
    for (uint32_t it = 0; it < iters; ++it) {
      SnapshotPass pass = RunSnapshotPass(snapshot_path, threads, &pool);
      if (it == 0 || pass.total() < best.total()) best = pass;
      // Detection from the snapshot must reproduce the CSV path's
      // findings exactly, at every thread count.
      if (!have_reference) {
        reference_groups = pass.groups;
        reference_arcs = pass.suspicious_arcs;
        have_reference = true;
      }
      TPIIN_CHECK_EQ(pass.groups, reference_groups);
      TPIIN_CHECK_EQ(pass.suspicious_arcs, reference_arcs);
    }
    if (rung == 0) serial_open_s = best.open_s;
    std::printf("%-8u %-10.3f %-10.3f %-10.3f %zu\n", threads,
                best.open_s * 1e3, best.detect_s, best.total(),
                best.groups);
    const std::string case_name = StringPrintf("threads=%u", threads);
    json.Record("pipeline_snapshot_open", case_name, best.open_s);
    json.Record("pipeline_snapshot_detect", case_name, best.detect_s);
    json.Record("pipeline_snapshot_to_groups", case_name, best.total(),
                best.total() > 0 ? reference_arcs / best.total() : 0);
  }
  if (serial_cold_start_s > 0 && serial_open_s > 0) {
    const double speedup = serial_cold_start_s / serial_open_s;
    std::printf(
        "\nsnapshot open %.2f ms replaces CSV ingest+fusion %.1f ms: "
        "%.0fx faster startup\n",
        serial_open_s * 1e3, serial_cold_start_s * 1e3, speedup);
    json.Record("pipeline_snapshot_open_speedup", "threads=1", 0, speedup);
  }

  json.Flush();
  std::printf(
      "\n(best of %u passes per rung; findings asserted identical across "
      "all thread counts and both input paths. Arena hit rate %.0f%% "
      "over the whole sweep.)\n",
      iters,
      pool.num_acquires() > 0
          ? 100.0 * pool.num_hits() / pool.num_acquires()
          : 0.0);
  return 0;
}

}  // namespace
}  // namespace tpiin

int main(int argc, char** argv) {
  tpiin::BenchJsonWriter json =
      tpiin::BenchJsonWriter::FromArgs(argc, argv);
  uint32_t extra = tpiin::ParseThreadsFlag(argc, argv, /*default=*/1);
  uint32_t iters = 3;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--iters=", 0) == 0) {
      iters = std::max(1, std::atoi(arg.c_str() + 8));
    } else if (arg == "--iters" && i + 1 < argc) {
      iters = std::max(1, std::atoi(argv[++i]));
    }
  }
  return tpiin::Run(json, extra, iters,
                    tpiin::ParseSnapshotFlag(argc, argv));
}

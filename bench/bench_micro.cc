// google-benchmark microbenchmarks of the pipeline's building blocks:
// graph algorithms (Tarjan SCC, weak connectivity), fusion, Algorithm 2
// (patterns tree), component-pattern matching, the end-to-end detector
// and the trading-network generator.

#include <benchmark/benchmark.h>

#include <memory>

#include "common/logging.h"
#include "common/rng.h"
#include "core/detector.h"
#include "core/incremental.h"
#include "core/scoring.h"
#include "core/matcher.h"
#include "core/pattern_tree.h"
#include "core/subtpiin.h"
#include "datagen/province.h"
#include "fusion/pipeline.h"
#include "graph/connected.h"
#include "graph/scc.h"

namespace tpiin {
namespace {

// Shared fixtures: one province per trading probability, built lazily
// and cached for the whole benchmark binary run.
struct Fixture {
  RawDataset dataset;
  Tpiin net;
};

const Fixture& GetFixture(double p) {
  static auto* cache = new std::map<double, std::unique_ptr<Fixture>>();
  auto it = cache->find(p);
  if (it == cache->end()) {
    ProvinceConfig config = PaperProvinceConfig();
    config.trading_probability = p;
    Result<Province> province = GenerateProvince(config);
    TPIIN_CHECK(province.ok());
    Result<FusionOutput> fused = BuildTpiin(province->dataset);
    TPIIN_CHECK(fused.ok());
    auto fixture = std::make_unique<Fixture>();
    fixture->dataset = std::move(province->dataset);
    fixture->net = std::move(fused->tpiin);
    it = cache->emplace(p, std::move(fixture)).first;
  }
  return *it->second;
}

double ArgToProb(int64_t arg) { return arg / 1000.0; }

void BM_FusionPipeline(benchmark::State& state) {
  const Fixture& fixture = GetFixture(ArgToProb(state.range(0)));
  FusionOptions options;
  options.validate_dataset = false;
  for (auto _ : state) {
    Result<FusionOutput> fused = BuildTpiin(fixture.dataset, options);
    TPIIN_CHECK(fused.ok());
    benchmark::DoNotOptimize(fused->tpiin.NumNodes());
  }
}
BENCHMARK(BM_FusionPipeline)->Arg(2)->Arg(20);

void BM_TarjanScc(benchmark::State& state) {
  const Fixture& fixture = GetFixture(0.002);
  for (auto _ : state) {
    SccResult scc = StronglyConnectedComponents(fixture.net.graph());
    benchmark::DoNotOptimize(scc.num_components);
  }
}
BENCHMARK(BM_TarjanScc);

void BM_WeaklyConnected(benchmark::State& state) {
  const Fixture& fixture = GetFixture(0.002);
  for (auto _ : state) {
    WccResult wcc =
        WeaklyConnectedComponents(fixture.net.graph(), IsInfluenceArc);
    benchmark::DoNotOptimize(wcc.num_components);
  }
}
BENCHMARK(BM_WeaklyConnected);

void BM_SegmentTpiin(benchmark::State& state) {
  const Fixture& fixture = GetFixture(ArgToProb(state.range(0)));
  for (auto _ : state) {
    std::vector<SubTpiin> subs = SegmentTpiin(fixture.net);
    benchmark::DoNotOptimize(subs.size());
  }
}
BENCHMARK(BM_SegmentTpiin)->Arg(2)->Arg(20);

void BM_GeneratePatternBase(benchmark::State& state) {
  const Fixture& fixture = GetFixture(ArgToProb(state.range(0)));
  std::vector<SubTpiin> subs = SegmentTpiin(fixture.net);
  for (auto _ : state) {
    size_t trails = 0;
    for (const SubTpiin& sub : subs) {
      Result<PatternGenResult> gen = GeneratePatternBase(sub);
      TPIIN_CHECK(gen.ok());
      trails += gen->base.size();
    }
    benchmark::DoNotOptimize(trails);
  }
}
BENCHMARK(BM_GeneratePatternBase)->Arg(2)->Arg(20);

void BM_MatchPatterns(benchmark::State& state) {
  const Fixture& fixture = GetFixture(ArgToProb(state.range(0)));
  std::vector<SubTpiin> subs = SegmentTpiin(fixture.net);
  std::vector<PatternBase> bases;
  for (const SubTpiin& sub : subs) {
    Result<PatternGenResult> gen = GeneratePatternBase(sub);
    TPIIN_CHECK(gen.ok());
    bases.push_back(std::move(gen->base));
  }
  MatchOptions options;
  options.collect_groups = false;
  for (auto _ : state) {
    size_t groups = 0;
    for (size_t i = 0; i < subs.size(); ++i) {
      MatchResult match = MatchPatterns(subs[i], bases[i], options);
      groups += match.num_simple + match.num_complex;
    }
    benchmark::DoNotOptimize(groups);
  }
}
BENCHMARK(BM_MatchPatterns)->Arg(2)->Arg(20);

void BM_DetectEndToEnd(benchmark::State& state) {
  const Fixture& fixture = GetFixture(ArgToProb(state.range(0)));
  DetectorOptions options;
  options.match.collect_groups = false;
  for (auto _ : state) {
    Result<DetectionResult> result =
        DetectSuspiciousGroups(fixture.net, options);
    TPIIN_CHECK(result.ok());
    benchmark::DoNotOptimize(result->suspicious_trades.size());
  }
}
BENCHMARK(BM_DetectEndToEnd)->Arg(2)->Arg(20);

void BM_IncrementalScreenerBuild(benchmark::State& state) {
  const Fixture& fixture = GetFixture(0.002);
  for (auto _ : state) {
    IncrementalScreener screener(fixture.net);
    benchmark::DoNotOptimize(screener.TotalAncestorEntries());
  }
}
BENCHMARK(BM_IncrementalScreenerBuild);

void BM_IncrementalScreenQuery(benchmark::State& state) {
  const Fixture& fixture = GetFixture(0.002);
  IncrementalScreener screener(fixture.net);
  Rng rng(3);
  const NodeId n = fixture.net.NumNodes();
  size_t hits = 0;
  for (auto _ : state) {
    NodeId a = static_cast<NodeId>(rng.UniformU64(n));
    NodeId b = static_cast<NodeId>(rng.UniformU64(n));
    hits += screener.IsSuspicious(a, b);
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_IncrementalScreenQuery);

void BM_ScoreDetection(benchmark::State& state) {
  const Fixture& fixture = GetFixture(ArgToProb(state.range(0)));
  auto detection = DetectSuspiciousGroups(fixture.net);
  TPIIN_CHECK(detection.ok());
  for (auto _ : state) {
    ScoringResult scoring = ScoreDetection(fixture.net, *detection);
    benchmark::DoNotOptimize(scoring.ranked_trades.size());
  }
}
BENCHMARK(BM_ScoreDetection)->Arg(2)->Arg(20);

void BM_GenerateTradingNetwork(benchmark::State& state) {
  Rng rng(7);
  double p = ArgToProb(state.range(0));
  for (auto _ : state) {
    std::vector<TradeRecord> trades = GenerateTradingNetwork(2452, p, rng);
    benchmark::DoNotOptimize(trades.size());
  }
}
BENCHMARK(BM_GenerateTradingNetwork)->Arg(2)->Arg(100);

}  // namespace
}  // namespace tpiin

BENCHMARK_MAIN();

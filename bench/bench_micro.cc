// google-benchmark microbenchmarks of the pipeline's building blocks:
// graph algorithms (Tarjan SCC, weak connectivity), fusion, Algorithm 2
// (patterns tree), component-pattern matching, the end-to-end detector
// and the trading-network generator.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_net.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/arena_pool.h"
#include "core/detector.h"
#include "core/incremental.h"
#include "core/scoring.h"
#include "core/matcher.h"
#include "core/pattern_tree.h"
#include "core/subtpiin.h"
#include "datagen/province.h"
#include "fusion/pipeline.h"
#include "graph/connected.h"
#include "graph/frozen.h"
#include "graph/scc.h"

namespace tpiin {
namespace {

// Set by main() when --snapshot=PATH is passed: every fixture then maps
// the same pre-built net instead of generating+fusing a province, and
// benchmarks that need the RawDataset or the mutable Digraph skip.
std::string g_snapshot_path;  // NOLINT

// Shared fixtures: one province per trading probability, built lazily
// and cached for the whole benchmark binary run. In snapshot mode the
// probability key is ignored (the file *is* the network) and `dataset`
// stays empty.
struct Fixture {
  RawDataset dataset;
  Tpiin fused_net;
  std::unique_ptr<SnapshotView> view;

  bool from_snapshot() const { return view != nullptr; }
  const Tpiin& net() const {
    return view != nullptr ? view->net() : fused_net;
  }
};

const Fixture& GetFixture(double p) {
  static auto* cache = new std::map<double, std::unique_ptr<Fixture>>();
  if (!g_snapshot_path.empty()) p = 0;  // One shared snapshot fixture.
  auto it = cache->find(p);
  if (it == cache->end()) {
    auto fixture = std::make_unique<Fixture>();
    if (!g_snapshot_path.empty()) {
      Result<std::unique_ptr<SnapshotView>> view =
          SnapshotView::Open(g_snapshot_path);
      TPIIN_CHECK(view.ok()) << view.status().ToString();
      fixture->view = std::move(*view);
    } else {
      ProvinceConfig config = PaperProvinceConfig();
      config.trading_probability = p;
      Result<Province> province = GenerateProvince(config);
      TPIIN_CHECK(province.ok());
      Result<FusionOutput> fused = BuildTpiin(province->dataset);
      TPIIN_CHECK(fused.ok());
      fixture->dataset = std::move(province->dataset);
      fixture->fused_net = std::move(fused->tpiin);
    }
    it = cache->emplace(p, std::move(fixture)).first;
  }
  return *it->second;
}

// True (and skips the benchmark) when snapshot mode removes this
// benchmark's input: the raw dataset and the adjacency-list Digraph are
// not part of the snapshot.
bool SkipInSnapshotMode(benchmark::State& state) {
  if (g_snapshot_path.empty()) return false;
  state.SkipWithError("needs CSV-mode inputs (dataset/Digraph), "
                      "not carried by --snapshot");
  return true;
}

double ArgToProb(int64_t arg) { return arg / 1000.0; }

void BM_FusionPipeline(benchmark::State& state) {
  if (SkipInSnapshotMode(state)) return;
  const Fixture& fixture = GetFixture(ArgToProb(state.range(0)));
  FusionOptions options;
  options.validate_dataset = false;
  for (auto _ : state) {
    Result<FusionOutput> fused = BuildTpiin(fixture.dataset, options);
    TPIIN_CHECK(fused.ok());
    benchmark::DoNotOptimize(fused->tpiin.NumNodes());
  }
}
BENCHMARK(BM_FusionPipeline)->Arg(2)->Arg(20);

// Fusion with the multi-threaded stage schedule: independent relationship
// layers build concurrently, the person union-find / investment SCC run
// partitioned, and the CSR freeze builds its two halves as parallel
// tasks. Output is bit-identical to the serial path (asserted by
// tests/fusion/parallel_fusion_test.cc); only wall clock changes.
void BM_FusionPipelineParallel(benchmark::State& state) {
  if (SkipInSnapshotMode(state)) return;
  const Fixture& fixture = GetFixture(ArgToProb(state.range(0)));
  FusionOptions options;
  options.validate_dataset = false;
  options.num_threads = static_cast<uint32_t>(state.range(1));
  for (auto _ : state) {
    Result<FusionOutput> fused = BuildTpiin(fixture.dataset, options);
    TPIIN_CHECK(fused.ok());
    benchmark::DoNotOptimize(fused->tpiin.NumNodes());
  }
}
BENCHMARK(BM_FusionPipelineParallel)
    ->ArgsProduct({{2, 20}, {1, 2, 4}})
    ->ArgNames({"p_mille", "threads"});

void BM_TarjanScc(benchmark::State& state) {
  if (SkipInSnapshotMode(state)) return;
  const Fixture& fixture = GetFixture(0.002);
  for (auto _ : state) {
    SccResult scc = StronglyConnectedComponents(fixture.net().graph());
    benchmark::DoNotOptimize(scc.num_components);
  }
}
BENCHMARK(BM_TarjanScc);

// Tarjan over the CSR FrozenGraph view (the fusion pipeline's path).
void BM_TarjanSccFrozen(benchmark::State& state) {
  const Fixture& fixture = GetFixture(0.002);
  for (auto _ : state) {
    SccResult scc = StronglyConnectedComponents(fixture.net().frozen());
    benchmark::DoNotOptimize(scc.num_components);
  }
}
BENCHMARK(BM_TarjanSccFrozen);

void BM_WeaklyConnected(benchmark::State& state) {
  if (SkipInSnapshotMode(state)) return;
  const Fixture& fixture = GetFixture(0.002);
  for (auto _ : state) {
    WccResult wcc =
        WeaklyConnectedComponents(fixture.net().graph(), IsInfluenceArc);
    benchmark::DoNotOptimize(wcc.num_components);
  }
}
BENCHMARK(BM_WeaklyConnected);

// WCC over the influence span of the CSR view (SegmentTpiin's path): no
// std::function filter call and no Arc load per edge.
void BM_WeaklyConnectedFrozen(benchmark::State& state) {
  const Fixture& fixture = GetFixture(0.002);
  for (auto _ : state) {
    WccResult wcc = WeaklyConnectedComponents(fixture.net().frozen(),
                                              FrozenArcClass::kInfluence);
    benchmark::DoNotOptimize(wcc.num_components);
  }
}
BENCHMARK(BM_WeaklyConnectedFrozen);

// One-off cost of building the CSR view (paid once per (sub)TPIIN build,
// amortized over every traversal that follows).
void BM_FreezeGraph(benchmark::State& state) {
  if (SkipInSnapshotMode(state)) return;
  const Fixture& fixture = GetFixture(ArgToProb(state.range(0)));
  for (auto _ : state) {
    FrozenGraph frozen(fixture.net().graph(), kArcInfluence);
    benchmark::DoNotOptimize(frozen.NumArcs());
  }
}
BENCHMARK(BM_FreezeGraph)->Arg(2)->Arg(20);

void BM_SegmentTpiin(benchmark::State& state) {
  const Fixture& fixture = GetFixture(ArgToProb(state.range(0)));
  for (auto _ : state) {
    std::vector<SubTpiin> subs = SegmentTpiin(fixture.net());
    benchmark::DoNotOptimize(subs.size());
  }
}
BENCHMARK(BM_SegmentTpiin)->Arg(2)->Arg(20);

// Algorithm 2 over both in-tree drivers: range(1) selects the CSR
// FrozenGraph driver (1, the production default) or the adjacency-list
// fallback driver (0). Output is bit-identical; only the walk's memory
// traffic differs. Note both drivers share the arena-backed PatternBase
// and the frozen listD degree counters — for the full speedup over what
// the growth seed shipped, compare against BM_GeneratePatternBaseSeed.
void BM_GeneratePatternBase(benchmark::State& state) {
  const Fixture& fixture = GetFixture(ArgToProb(state.range(0)));
  std::vector<SubTpiin> subs = SegmentTpiin(fixture.net());
  PatternGenOptions options;
  options.use_frozen_graph = state.range(1) != 0;
  for (auto _ : state) {
    size_t trails = 0;
    for (const SubTpiin& sub : subs) {
      Result<PatternGenResult> gen = GeneratePatternBase(sub, options);
      TPIIN_CHECK(gen.ok());
      trails += gen->base.size();
    }
    benchmark::DoNotOptimize(trails);
  }
}
BENCHMARK(BM_GeneratePatternBase)
    ->ArgsProduct({{2, 20}, {0, 1}})
    ->ArgNames({"p_mille", "frozen"});

// Reference reimplementation of Algorithm 2 exactly as the growth seed
// shipped it, kept here (bench-only, never linked into the library) as
// the baseline for the PR's headline number: DFS over Digraph::OutArcs
// with a per-edge ArcColor branch, one heap-allocated std::vector<NodeId>
// copied per emitted trail, and an O(arcs) indegree scan in listD. The
// production path replaced all three (color-partitioned CSR spans, arena
// PatternBase, FrozenGraph degree counters); equivalence tests pin the
// output bit-identical, so BM_GeneratePatternBaseSeed /
// BM_GeneratePatternBase{frozen:1} is a pure like-for-like speedup.
namespace seed_reference {

struct SeedTrail {
  std::vector<NodeId> nodes;
  NodeId trade_dst = kInvalidNode;
  ArcId trade_arc = kInvalidArc;
};

struct SeedResult {
  std::vector<SeedTrail> base;
  PatternsTree tree;
  size_t num_trails = 0;
};

SeedResult GeneratePatternBaseSeed(const SubTpiin& sub) {
  const Digraph& g = sub.graph;
  const NodeId n = g.NumNodes();
  SeedResult result;

  std::vector<uint32_t> influence_in(n, 0);
  for (ArcId id = 0; id < sub.num_influence_arcs; ++id) {
    ++influence_in[g.arc(id).dst];
  }
  {  // Kahn DAG check over the influence subgraph.
    std::vector<uint32_t> degree = influence_in;
    std::vector<NodeId> frontier;
    for (NodeId v = 0; v < n; ++v) {
      if (degree[v] == 0) frontier.push_back(v);
    }
    NodeId processed = 0;
    while (!frontier.empty()) {
      NodeId u = frontier.back();
      frontier.pop_back();
      ++processed;
      for (ArcId id : g.OutArcs(u)) {
        const Arc& arc = g.arc(id);
        if (!IsInfluenceArc(arc)) continue;
        if (--degree[arc.dst] == 0) frontier.push_back(arc.dst);
      }
    }
    TPIIN_CHECK_EQ(processed, n);
  }

  // Seed listD: indegree via a full arc scan (no CSR degree counters).
  std::vector<ListDEntry> list(n);
  for (NodeId v = 0; v < n; ++v) {
    list[v].node = v;
    list[v].out_degree = g.OutDegree(v);
  }
  for (const Arc& arc : g.arcs()) ++list[arc.dst].in_degree;
  std::sort(list.begin(), list.end(),
            [](const ListDEntry& a, const ListDEntry& b) {
              if (a.in_degree != b.in_degree) {
                return a.in_degree < b.in_degree;
              }
              if (a.out_degree != b.out_degree) {
                return a.out_degree > b.out_degree;
              }
              return a.node < b.node;
            });
  std::vector<NodeId> roots;
  for (const ListDEntry& entry : list) {
    if (influence_in[entry.node] == 0) roots.push_back(entry.node);
  }

  struct Frame {
    NodeId node;
    uint32_t arc_pos;
    int32_t tree_index;
  };
  std::vector<Frame> frames;
  std::vector<NodeId> path;
  std::vector<uint8_t> on_path(n, 0);

  auto emit_plain = [&]() {
    ++result.num_trails;
    SeedTrail trail;
    trail.nodes = path;
    result.base.push_back(std::move(trail));
  };
  auto emit_trade = [&](ArcId arc_id, NodeId dst) {
    ++result.num_trails;
    SeedTrail trail;
    trail.nodes = path;
    trail.trade_dst = dst;
    trail.trade_arc = arc_id;
    result.base.push_back(std::move(trail));
  };
  auto add_tree_node = [&](NodeId graph_node, int32_t parent,
                           bool via_trade, ArcId via_arc) -> int32_t {
    int32_t index = static_cast<int32_t>(result.tree.nodes.size());
    result.tree.nodes.push_back(
        PatternsTree::TreeNode{graph_node, parent, via_trade, via_arc});
    if (parent < 0) result.tree.roots.push_back(index);
    return index;
  };

  for (NodeId root : roots) {
    int32_t root_tree = add_tree_node(root, -1, false, kInvalidArc);
    frames.push_back(Frame{root, 0, root_tree});
    path.push_back(root);
    on_path[root] = 1;
    if (g.OutDegree(root) == 0) emit_plain();  // Rule 1 at the root.

    while (!frames.empty()) {
      Frame& frame = frames.back();
      std::span<const ArcId> out = g.OutArcs(frame.node);
      bool descended = false;
      while (frame.arc_pos < out.size()) {
        ArcId arc_id = out[frame.arc_pos];
        ++frame.arc_pos;
        const Arc& arc = g.arc(arc_id);
        if (IsTradingArc(arc)) {
          emit_trade(arc_id, arc.dst);
          add_tree_node(arc.dst, frame.tree_index, true, arc_id);
          continue;
        }
        TPIIN_CHECK(!on_path[arc.dst]);
        int32_t child_tree =
            add_tree_node(arc.dst, frame.tree_index, false, arc_id);
        frames.push_back(Frame{arc.dst, 0, child_tree});
        path.push_back(arc.dst);
        on_path[arc.dst] = 1;
        if (g.OutDegree(arc.dst) == 0) emit_plain();  // Rule 1.
        descended = true;
        break;
      }
      if (!descended && !frames.empty() &&
          frames.back().arc_pos >=
              g.OutArcs(frames.back().node).size()) {
        on_path[frames.back().node] = 0;
        path.pop_back();
        frames.pop_back();
      }
    }
  }
  return result;
}

}  // namespace seed_reference

void BM_GeneratePatternBaseSeed(benchmark::State& state) {
  const Fixture& fixture = GetFixture(ArgToProb(state.range(0)));
  std::vector<SubTpiin> subs = SegmentTpiin(fixture.net());
  // Pin the reference to the production driver before timing it: same
  // trail count (and therefore the same emitted base) per subnetwork.
  for (const SubTpiin& sub : subs) {
    Result<PatternGenResult> gen = GeneratePatternBase(sub);
    TPIIN_CHECK(gen.ok());
    seed_reference::SeedResult ref =
        seed_reference::GeneratePatternBaseSeed(sub);
    TPIIN_CHECK_EQ(gen->num_trails, ref.num_trails);
    TPIIN_CHECK_EQ(gen->tree.nodes.size(), ref.tree.nodes.size());
  }
  for (auto _ : state) {
    size_t trails = 0;
    for (const SubTpiin& sub : subs) {
      seed_reference::SeedResult gen =
          seed_reference::GeneratePatternBaseSeed(sub);
      trails += gen.base.size();
    }
    benchmark::DoNotOptimize(trails);
  }
}
BENCHMARK(BM_GeneratePatternBaseSeed)
    ->Arg(2)
    ->Arg(20)
    ->ArgNames({"p_mille"});

void BM_MatchPatterns(benchmark::State& state) {
  const Fixture& fixture = GetFixture(ArgToProb(state.range(0)));
  std::vector<SubTpiin> subs = SegmentTpiin(fixture.net());
  std::vector<PatternBase> bases;
  for (const SubTpiin& sub : subs) {
    Result<PatternGenResult> gen = GeneratePatternBase(sub);
    TPIIN_CHECK(gen.ok());
    bases.push_back(std::move(gen->base));
  }
  MatchOptions options;
  options.collect_groups = false;
  for (auto _ : state) {
    size_t groups = 0;
    for (size_t i = 0; i < subs.size(); ++i) {
      MatchResult match = MatchPatterns(subs[i], bases[i], options);
      groups += match.num_simple + match.num_complex;
    }
    benchmark::DoNotOptimize(groups);
  }
}
BENCHMARK(BM_MatchPatterns)->Arg(2)->Arg(20);

void BM_DetectEndToEnd(benchmark::State& state) {
  const Fixture& fixture = GetFixture(ArgToProb(state.range(0)));
  DetectorOptions options;
  options.match.collect_groups = false;
  for (auto _ : state) {
    Result<DetectionResult> result =
        DetectSuspiciousGroups(fixture.net(), options);
    TPIIN_CHECK(result.ok());
    benchmark::DoNotOptimize(result->suspicious_trades.size());
  }
}
BENCHMARK(BM_DetectEndToEnd)->Arg(2)->Arg(20);

// The serving-style repeated-detection workload: the same TPIIN mined
// over and over (range(1) = 1 routes generation storage through a
// persistent ArenaPool, 0 allocates fresh buffers per call, the seed
// behavior). After the first iteration warms the pool every subTPIIN's
// PatternBase/tree lands in a recycled buffer, so the steady-state delta
// between the two rows is the allocator traffic Algorithm 2 no longer
// pays. Results are identical with or without the pool.
void BM_DetectArenaReuse(benchmark::State& state) {
  const Fixture& fixture = GetFixture(ArgToProb(state.range(0)));
  ArenaPool pool;
  DetectorOptions options;
  options.match.collect_groups = false;
  options.arena_pool = state.range(1) != 0 ? &pool : nullptr;
  for (auto _ : state) {
    Result<DetectionResult> result =
        DetectSuspiciousGroups(fixture.net(), options);
    TPIIN_CHECK(result.ok());
    benchmark::DoNotOptimize(result->suspicious_trades.size());
  }
  if (options.arena_pool != nullptr) {
    state.counters["arena_hit_rate"] =
        pool.num_acquires() > 0
            ? static_cast<double>(pool.num_hits()) / pool.num_acquires()
            : 0.0;
  }
}
BENCHMARK(BM_DetectArenaReuse)
    ->ArgsProduct({{2, 20}, {0, 1}})
    ->ArgNames({"p_mille", "arena"});

void BM_IncrementalScreenerBuild(benchmark::State& state) {
  const Fixture& fixture = GetFixture(0.002);
  for (auto _ : state) {
    IncrementalScreener screener(fixture.net());
    benchmark::DoNotOptimize(screener.TotalAncestorEntries());
  }
}
BENCHMARK(BM_IncrementalScreenerBuild);

void BM_IncrementalScreenQuery(benchmark::State& state) {
  const Fixture& fixture = GetFixture(0.002);
  IncrementalScreener screener(fixture.net());
  Rng rng(3);
  const NodeId n = fixture.net().NumNodes();
  size_t hits = 0;
  for (auto _ : state) {
    NodeId a = static_cast<NodeId>(rng.UniformU64(n));
    NodeId b = static_cast<NodeId>(rng.UniformU64(n));
    hits += screener.IsSuspicious(a, b);
  }
  benchmark::DoNotOptimize(hits);
}
BENCHMARK(BM_IncrementalScreenQuery);

void BM_ScoreDetection(benchmark::State& state) {
  const Fixture& fixture = GetFixture(ArgToProb(state.range(0)));
  auto detection = DetectSuspiciousGroups(fixture.net());
  TPIIN_CHECK(detection.ok());
  for (auto _ : state) {
    ScoringResult scoring = ScoreDetection(fixture.net(), *detection);
    benchmark::DoNotOptimize(scoring.ranked_trades.size());
  }
}
BENCHMARK(BM_ScoreDetection)->Arg(2)->Arg(20);

void BM_GenerateTradingNetwork(benchmark::State& state) {
  Rng rng(7);
  double p = ArgToProb(state.range(0));
  for (auto _ : state) {
    std::vector<TradeRecord> trades = GenerateTradingNetwork(2452, p, rng);
    benchmark::DoNotOptimize(trades.size());
  }
}
BENCHMARK(BM_GenerateTradingNetwork)->Arg(2)->Arg(100);

// The serve-path constant the snapshot work targets: map + validate +
// bind one snapshot file (only registered in --snapshot mode, where a
// file exists to open).
void BM_SnapshotOpen(benchmark::State& state) {
  if (g_snapshot_path.empty()) {
    state.SkipWithError("pass --snapshot=PATH to measure open cost");
    return;
  }
  for (auto _ : state) {
    Result<std::unique_ptr<SnapshotView>> view =
        SnapshotView::Open(g_snapshot_path);
    TPIIN_CHECK(view.ok()) << view.status().ToString();
    benchmark::DoNotOptimize((*view)->net().NumArcs());
  }
}
BENCHMARK(BM_SnapshotOpen);

}  // namespace
}  // namespace tpiin

// BENCHMARK_MAIN, plus the shared --snapshot flag. The flag is consumed
// here (google-benchmark rejects unknown arguments), so strip it from
// argv before Initialize sees it.
int main(int argc, char** argv) {
  tpiin::g_snapshot_path = tpiin::ParseSnapshotFlag(argc, argv);
  std::vector<char*> kept;
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--snapshot=", 0) == 0) continue;
    if (arg == "--snapshot") {  // Skip the flag and its value.
      if (i + 1 < argc) ++i;
      continue;
    }
    kept.push_back(argv[i]);
  }
  int kept_argc = static_cast<int>(kept.size());
  benchmark::Initialize(&kept_argc, kept.data());
  if (benchmark::ReportUnrecognizedArguments(kept_argc, kept.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Reproduces the paper's worked example end to end:
//   Fig. 7  - the un-contracted network (as a RawDataset),
//   Fig. 8  - the contracted TPIIN and its edge-list database,
//   Fig. 9  - the listD ordering and the patterns tree,
//   Fig. 10 - the potential component patterns base (15 trails),
//   §4.3    - the three suspicious groups.

#include <cstdio>

#include "bench/bench_json.h"
#include "bench/bench_net.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/detector.h"
#include "core/pattern_tree.h"
#include "core/subtpiin.h"
#include "datagen/worked_example.h"
#include "fusion/pipeline.h"

namespace tpiin {
namespace {

int Run(BenchJsonWriter& json, BenchNetSource& source) {
  std::printf("=== Worked example (paper Figs. 7-10) ===\n\n");

  Result<FusionOutput> fused = Status::Internal("unset");
  const Tpiin* net_ptr = nullptr;
  double fuse_s = 0;
  if (source.from_snapshot()) {
    net_ptr = &source.Open();
    json.Record("worked_example_snapshot_open", "fig7",
                source.open_seconds());
  } else {
    RawDataset dataset = BuildWorkedExampleDataset();
    std::printf("Fig. 7 (un-contracted network): %s\n\n",
                dataset.Stats().ToString().c_str());
    WallTimer fuse_timer;
    fused = BuildTpiin(dataset);
    fuse_s = fuse_timer.ElapsedSeconds();
    TPIIN_CHECK(fused.ok()) << fused.status().ToString();
    std::printf("Fig. 8 (TPIIN after contraction):\n%s\n\n",
                fused->stats.ToString().c_str());
    source.MaybeWrite(fused->tpiin);
    net_ptr = &fused->tpiin;
  }
  const Tpiin& net = *net_ptr;

  std::printf("Fig. 8 (edge-list database, src dst color; 1=blue "
              "influence, 0=black trading):\n");
  for (const auto& row : net.ToEdgeList()) {
    std::printf("  %-14s %-14s %u\n",
                std::string(net.Label(row[0])).c_str(),
                std::string(net.Label(row[1])).c_str(), row[2]);
  }

  std::vector<SubTpiin> subs = SegmentTpiin(net);
  TPIIN_CHECK_EQ(subs.size(), 1u);
  const SubTpiin& sub = subs[0];

  std::printf("\nFig. 9(a) listD (node, indegree, outdegree):\n");
  for (const ListDEntry& entry : ComputeListD(sub)) {
    std::printf("  %-10s in=%u out=%u\n",
                std::string(sub.Label(entry.node)).c_str(),
                entry.in_degree, entry.out_degree);
  }

  PatternGenOptions gen_options;
  gen_options.build_tree = true;
  Result<PatternGenResult> gen = GeneratePatternBase(sub, gen_options);
  TPIIN_CHECK(gen.ok()) << gen.status().ToString();

  std::printf("\nFig. 9(b) patterns tree:\n%s",
              gen->tree.ToString(sub).c_str());
  std::printf("\nFig. 10 potential component patterns base:\n%s",
              FormatPatternBase(sub, gen->base).c_str());

  WallTimer detect_timer;
  Result<DetectionResult> result = DetectSuspiciousGroups(net);
  double detect_s = detect_timer.ElapsedSeconds();
  TPIIN_CHECK(result.ok()) << result.status().ToString();
  std::printf("\nSuspicious groups (§4.3 expects (L1,C1,C2,C3,C5), "
              "(B1,C5,C6), (B2,C7,C8)):\n");
  for (const SuspiciousGroup& group : result->groups) {
    std::printf("  %s\n", group.Format(net).c_str());
  }
  std::printf("\n%s\n", result->Summary().c_str());
  if (!source.from_snapshot()) {
    json.Record("worked_example_fuse", "fig7", fuse_s);
  }
  json.Record("worked_example_detect", "fig7", detect_s,
              result->TotalGroups());
  json.Flush();
  return 0;
}

}  // namespace
}  // namespace tpiin

int main(int argc, char** argv) {
  tpiin::BenchJsonWriter json =
      tpiin::BenchJsonWriter::FromArgs(argc, argv);
  tpiin::BenchNetSource source = tpiin::BenchNetSource::FromArgs(argc, argv);
  return tpiin::Run(json, source);
}

// Streaming screening throughput: the paper's production setting (§1)
// sees up to ten million tax records a day; re-running Algorithm 1 per
// batch would rebuild every pattern tree. IncrementalScreener
// preprocesses the slowly-changing antecedent layer once and classifies
// each incoming trading relationship by sorted-set intersection. This
// harness measures preprocessing cost, per-arc screening throughput, and
// the equivalent cost of full re-detection per batch — and asserts the
// two classifications agree.

#include <cstdio>
#include <set>

#include "bench/bench_json.h"
#include "bench/bench_net.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/detector.h"
#include "core/incremental.h"
#include "datagen/province.h"
#include "fusion/pipeline.h"

namespace tpiin {
namespace {

int Run(BenchJsonWriter& json, BenchNetSource& source) {
  // The re-mining comparison overlays batches on the raw dataset, which
  // a snapshot does not carry — regenerate it either way (seeded, so it
  // matches the snapshot's antecedent net); --snapshot replaces only the
  // fusion step.
  ProvinceConfig config = PaperProvinceConfig();
  config.generate_trading = false;
  Result<Province> province = GenerateProvince(config);
  TPIIN_CHECK(province.ok());
  Result<FusionOutput> fused = Status::Internal("unset");
  const Tpiin* net_ptr = nullptr;
  if (source.from_snapshot()) {
    net_ptr = &source.Open();
    json.Record("incremental_snapshot_open", "paper_province",
                source.open_seconds());
  } else {
    fused = BuildTpiin(province->dataset);
    TPIIN_CHECK(fused.ok());
    source.MaybeWrite(fused->tpiin);
    net_ptr = &fused->tpiin;
  }
  const Tpiin& net = *net_ptr;

  std::printf("=== Incremental screening of streaming trading "
              "relationships ===\n\n");

  WallTimer timer;
  IncrementalScreener screener(net);
  double preprocess_s = timer.ElapsedSeconds();
  json.Record("screener_preprocess", "paper_province", preprocess_s);
  std::printf(
      "preprocess: %.4fs over %u antecedent nodes (%zu ancestor-set "
      "entries, %.1f per node)\n\n",
      preprocess_s, net.NumNodes(), screener.TotalAncestorEntries(),
      static_cast<double>(screener.TotalAncestorEntries()) /
          net.NumNodes());

  // Stream synthetic daily batches of trading relationships.
  Rng rng(99);
  std::vector<NodeId> companies;
  for (NodeId v = 0; v < net.NumNodes(); ++v) {
    if (net.node(v).color == NodeColor::kCompany) companies.push_back(v);
  }

  std::printf("%-12s %-12s %-12s %-14s %-10s\n", "batch", "suspicious",
              "screen(s)", "arcs/sec", "vs-remine");
  for (size_t batch_size : {10000ul, 100000ul, 1000000ul}) {
    std::vector<std::pair<NodeId, NodeId>> batch;
    batch.reserve(batch_size);
    while (batch.size() < batch_size) {
      NodeId a = companies[rng.UniformU64(companies.size())];
      NodeId b = companies[rng.UniformU64(companies.size())];
      if (a != b) batch.emplace_back(a, b);
    }

    timer.Restart();
    size_t flagged = 0;
    for (const auto& [seller, buyer] : batch) {
      flagged += screener.IsSuspicious(seller, buyer);
    }
    double screen_s = timer.ElapsedSeconds();

    // The re-mining alternative: overlay the batch as the trading layer
    // and run Algorithm 1 (only measured for the smaller batches).
    double remine_s = 0;
    if (batch_size <= 100000) {
      RawDataset with_batch = province->dataset;
      std::vector<TradeRecord> trades;
      trades.reserve(batch.size());
      for (const auto& [seller, buyer] : batch) {
        // Map node ids back to representative companies.
        trades.push_back(TradeRecord{
            net.node(seller).company_members.front(),
            net.node(buyer).company_members.front()});
      }
      with_batch.SetTrades(std::move(trades));
      FusionOptions fusion_options;
      fusion_options.validate_dataset = false;
      timer.Restart();
      Result<FusionOutput> refused = BuildTpiin(with_batch, fusion_options);
      TPIIN_CHECK(refused.ok());
      DetectorOptions options;
      options.match.collect_groups = false;
      Result<DetectionResult> redetect =
          DetectSuspiciousGroups(refused->tpiin, options);
      TPIIN_CHECK(redetect.ok());
      remine_s = timer.ElapsedSeconds();

      // Agreement check: the re-mined arc set equals the screener's.
      std::set<std::pair<NodeId, NodeId>> remined(
          redetect->suspicious_trades.begin(),
          redetect->suspicious_trades.end());
      size_t remined_flagged =
          remined.size() + redetect->intra_syndicate.size();
      std::set<std::pair<NodeId, NodeId>> screened;
      for (const auto& [seller, buyer] : batch) {
        if (screener.IsSuspicious(seller, buyer)) {
          screened.emplace(seller, buyer);
        }
      }
      TPIIN_CHECK_EQ(screened.size(), remined_flagged);
    }

    std::printf("%-12zu %-12zu %-12.4f %-14.0f %s\n", batch_size, flagged,
                screen_s,
                screen_s > 0 ? batch_size / screen_s : 0.0,
                remine_s > 0
                    ? StringPrintf("%.1fx faster", remine_s / screen_s)
                          .c_str()
                    : "-");
    std::string case_name = StringPrintf("batch=%zu", batch_size);
    json.Record("screen", case_name, screen_s,
                screen_s > 0 ? batch_size / screen_s : 0);
    if (remine_s > 0) json.Record("remine", case_name, remine_s);
  }
  json.Flush();
  return 0;
}

}  // namespace
}  // namespace tpiin

int main(int argc, char** argv) {
  tpiin::BenchJsonWriter json =
      tpiin::BenchJsonWriter::FromArgs(argc, argv);
  tpiin::BenchNetSource source = tpiin::BenchNetSource::FromArgs(argc, argv);
  return tpiin::Run(json, source);
}

// Compares two bench --json artifacts (or two RunReport artifacts) and
// fails on regressions.
//
// Usage:
//   bench_compare BASELINE.json CURRENT.json
//       [--metric=seconds|throughput] [--threshold=0.10]
//       [--bench=NAME] [--case=SUBSTR]
//
// Record mode (the default for flat arrays written by BenchJsonWriter):
//   [{"bench": ..., "case": ..., "seconds": ..., "throughput": ...}, ...]
// Records are matched by (bench, case). For `seconds` a regression is
// the current value exceeding baseline * (1 + threshold); for
// `throughput` it is falling below baseline * (1 - threshold). Records
// whose baseline value is zero are skipped (sentinel rows that carry a
// count in the other field). --bench / --case restrict the comparison.
//
// Report mode (auto-detected when both inputs are RunReport JSONs, i.e.
// objects with a top-level "tool" key — written by `tpiin fuse/detect
// --report=` and the bench harnesses' --report flag): stage wall
// seconds are matched by stage name and compared under the same
// threshold rule (plus the report's total_seconds), and every metric
// present in both snapshots is printed as a delta line
// (`metric <name>: <base> -> <cur> (delta)`). Metric deltas are
// informational; only stage/total timings drive the exit code.
//
// Exit codes: 0 = no regression, 1 = at least one regression,
// 2 = usage or I/O error. Documented in EXPERIMENTS.md.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

struct Record {
  std::string bench;
  std::string case_name;
  double seconds = 0;
  double throughput = 0;
};

// Minimal scanner for the writer's flat format: finds each "key":
// occurrence and reads the quoted-string or number value after it. Not a
// general JSON parser, but the producer is ours and the format is fixed.
bool ParseRecords(const std::string& path, std::vector<Record>* out) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  auto read_string = [&](size_t pos, std::string* value) -> bool {
    pos = text.find('"', pos);
    if (pos == std::string::npos) return false;
    std::string result;
    for (size_t i = pos + 1; i < text.size(); ++i) {
      if (text[i] == '\\' && i + 1 < text.size()) {
        result += text[++i];
      } else if (text[i] == '"') {
        *value = std::move(result);
        return true;
      } else {
        result += text[i];
      }
    }
    return false;
  };

  size_t pos = 0;
  while ((pos = text.find("{", pos)) != std::string::npos) {
    size_t end = text.find("}", pos);
    if (end == std::string::npos) break;
    Record record;
    bool ok = true;
    auto field = [&](const char* key, auto reader) {
      size_t at = text.find(std::string("\"") + key + "\":", pos);
      if (at == std::string::npos || at > end) {
        ok = false;
        return;
      }
      reader(at + std::strlen(key) + 3);
    };
    field("bench", [&](size_t at) {
      ok = ok && read_string(at, &record.bench);
    });
    field("case", [&](size_t at) {
      ok = ok && read_string(at, &record.case_name);
    });
    field("seconds", [&](size_t at) {
      record.seconds = std::strtod(text.c_str() + at, nullptr);
    });
    field("throughput", [&](size_t at) {
      record.throughput = std::strtod(text.c_str() + at, nullptr);
    });
    if (!ok) {
      std::fprintf(stderr, "bench_compare: malformed record in %s\n",
                   path.c_str());
      return false;
    }
    out->push_back(std::move(record));
    pos = end + 1;
  }
  return true;
}

// One parsed RunReport: stage timings plus a flattened metric map
// (counter/gauge -> value, histogram -> count).
struct ReportData {
  double total_seconds = 0;
  std::vector<std::pair<std::string, double>> stages;
  std::map<std::string, double> metrics;
};

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

// A RunReport is a JSON object whose first key is "tool"; the record
// arrays never contain that key.
bool LooksLikeReport(const std::string& text) {
  return text.find("\"tool\":") != std::string::npos;
}

// Minimal scanner in the spirit of ParseRecords: the producer is
// obs/report.cc, so the key order and nesting are fixed.
bool ParseReport(const std::string& path, ReportData* out) {
  std::string text;
  if (!ReadFile(path, &text)) return false;

  size_t at = text.find("\"total_seconds\":");
  if (at != std::string::npos) {
    out->total_seconds =
        std::strtod(text.c_str() + at + std::strlen("\"total_seconds\":"),
                    nullptr);
  }

  // Stages: {"name": "...", "seconds": N, ...} objects inside the
  // "stages" array (which ends at the first ']').
  size_t stages_at = text.find("\"stages\": [");
  if (stages_at != std::string::npos) {
    size_t stages_end = text.find(']', stages_at);
    size_t pos = stages_at;
    while (true) {
      size_t name_at = text.find("\"name\": \"", pos);
      if (name_at == std::string::npos || name_at > stages_end) break;
      size_t name_start = name_at + std::strlen("\"name\": \"");
      size_t name_end = text.find('"', name_start);
      size_t secs_at = text.find("\"seconds\":", name_end);
      if (name_end == std::string::npos || secs_at == std::string::npos ||
          secs_at > stages_end) {
        break;
      }
      out->stages.emplace_back(
          text.substr(name_start, name_end - name_start),
          std::strtod(text.c_str() + secs_at + std::strlen("\"seconds\":"),
                      nullptr));
      pos = secs_at;
    }
  }

  // Metrics: "name": {"type": "kind", ...} pairs after the "metrics"
  // key. Counters and gauges compare on "value", histograms on "count".
  size_t metrics_at = text.find("\"metrics\":");
  if (metrics_at != std::string::npos) {
    size_t pos = metrics_at;
    while (true) {
      size_t type_at = text.find("{\"type\": \"", pos);
      if (type_at == std::string::npos) break;
      // The metric name is the quoted key right before this object.
      size_t colon = text.rfind(':', type_at);
      size_t name_end = text.rfind('"', colon);
      size_t name_start =
          name_end == std::string::npos ? std::string::npos
                                        : text.rfind('"', name_end - 1);
      size_t entry_end = text.find('}', type_at);
      if (name_start == std::string::npos ||
          entry_end == std::string::npos) {
        break;
      }
      const std::string name =
          text.substr(name_start + 1, name_end - name_start - 1);
      double value = 0;
      for (const char* key : {"\"value\":", "\"count\":"}) {
        size_t value_at = text.find(key, type_at);
        if (value_at != std::string::npos && value_at < entry_end) {
          value = std::strtod(text.c_str() + value_at + std::strlen(key),
                              nullptr);
          break;
        }
      }
      out->metrics[name] = value;
      pos = entry_end;
    }
  }
  return true;
}

int CompareReports(const std::string& baseline_path,
                   const std::string& current_path, double threshold) {
  ReportData baseline;
  ReportData current;
  if (!ParseReport(baseline_path, &baseline) ||
      !ParseReport(current_path, &current)) {
    return 2;
  }

  std::map<std::string, double> base_stages(baseline.stages.begin(),
                                            baseline.stages.end());
  size_t compared = 0;
  size_t regressions = 0;
  auto check = [&](const std::string& name, double base, double cur) {
    if (base <= 0) return;  // Too fast to attribute; nothing to compare.
    ++compared;
    double ratio = cur / base;
    if (ratio > 1.0 + threshold) {
      ++regressions;
      std::printf("REGRESSION stage %s: seconds %.6g -> %.6g (%+.1f%%)\n",
                  name.c_str(), base, cur, 100.0 * (ratio - 1.0));
    }
  };
  for (const auto& [name, seconds] : current.stages) {
    auto it = base_stages.find(name);
    if (it != base_stages.end()) check(name, it->second, seconds);
  }
  check("(total)", baseline.total_seconds, current.total_seconds);

  size_t metrics_diffed = 0;
  for (const auto& [name, cur] : current.metrics) {
    auto it = baseline.metrics.find(name);
    if (it == baseline.metrics.end()) continue;
    ++metrics_diffed;
    if (cur != it->second) {
      std::printf("metric %s: %.10g -> %.10g (%+.10g)\n", name.c_str(),
                  it->second, cur, cur - it->second);
    }
  }

  std::printf(
      "bench_compare: report mode, %zu stage(s) compared, threshold "
      "%.0f%%, %zu metric(s) diffed, %zu regression(s)\n",
      compared, 100.0 * threshold, metrics_diffed, regressions);
  return regressions > 0 ? 1 : 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: bench_compare BASELINE.json CURRENT.json\n"
      "         [--metric=seconds|throughput] [--threshold=0.10]\n"
      "         [--bench=NAME] [--case=SUBSTR]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string metric = "seconds";
  std::string bench_filter;
  std::string case_filter;
  double threshold = 0.10;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--metric=", 0) == 0) {
      metric = arg.substr(9);
    } else if (arg.rfind("--threshold=", 0) == 0) {
      threshold = std::strtod(arg.c_str() + 12, nullptr);
    } else if (arg.rfind("--bench=", 0) == 0) {
      bench_filter = arg.substr(8);
    } else if (arg.rfind("--case=", 0) == 0) {
      case_filter = arg.substr(7);
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2 ||
      (metric != "seconds" && metric != "throughput") || threshold <= 0) {
    return Usage();
  }

  {
    std::string base_text;
    std::string cur_text;
    if (!ReadFile(paths[0], &base_text) || !ReadFile(paths[1], &cur_text)) {
      return 2;
    }
    const bool base_report = LooksLikeReport(base_text);
    const bool cur_report = LooksLikeReport(cur_text);
    if (base_report != cur_report) {
      std::fprintf(stderr,
                   "bench_compare: cannot mix a RunReport and a record "
                   "array\n");
      return 2;
    }
    if (base_report) return CompareReports(paths[0], paths[1], threshold);
  }

  std::vector<Record> baseline;
  std::vector<Record> current;
  if (!ParseRecords(paths[0], &baseline) ||
      !ParseRecords(paths[1], &current)) {
    return 2;
  }

  std::map<std::pair<std::string, std::string>, const Record*> by_key;
  for (const Record& record : baseline) {
    by_key[{record.bench, record.case_name}] = &record;
  }

  const bool lower_is_better = metric == "seconds";
  size_t compared = 0;
  size_t regressions = 0;
  for (const Record& record : current) {
    if (!bench_filter.empty() && record.bench != bench_filter) continue;
    if (!case_filter.empty() &&
        record.case_name.find(case_filter) == std::string::npos) {
      continue;
    }
    auto it = by_key.find({record.bench, record.case_name});
    if (it == by_key.end()) continue;  // New case; nothing to compare.
    double base = lower_is_better ? it->second->seconds
                                  : it->second->throughput;
    double cur = lower_is_better ? record.seconds : record.throughput;
    if (base <= 0) continue;  // Sentinel/count-only rows.
    ++compared;
    double ratio = cur / base;
    bool regressed = lower_is_better ? ratio > 1.0 + threshold
                                     : ratio < 1.0 - threshold;
    if (regressed) {
      ++regressions;
      std::printf("REGRESSION %s/%s: %s %.6g -> %.6g (%+.1f%%)\n",
                  record.bench.c_str(), record.case_name.c_str(),
                  metric.c_str(), base, cur, 100.0 * (ratio - 1.0));
    }
  }
  std::printf(
      "bench_compare: %zu case(s) compared on %s, threshold %.0f%%, "
      "%zu regression(s)\n",
      compared, metric.c_str(), 100.0 * threshold, regressions);
  if (compared == 0) {
    std::fprintf(stderr,
                 "bench_compare: no overlapping cases; check filters "
                 "and inputs\n");
    return 2;
  }
  return regressions > 0 ? 1 : 0;
}

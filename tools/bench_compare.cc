// Compares two bench --json artifacts and fails on regressions.
//
// Usage:
//   bench_compare BASELINE.json CURRENT.json
//       [--metric=seconds|throughput] [--threshold=0.10]
//       [--bench=NAME] [--case=SUBSTR]
//
// Both files are the flat arrays written by BenchJsonWriter:
//   [{"bench": ..., "case": ..., "seconds": ..., "throughput": ...}, ...]
// Records are matched by (bench, case). For `seconds` a regression is
// the current value exceeding baseline * (1 + threshold); for
// `throughput` it is falling below baseline * (1 - threshold). Records
// whose baseline value is zero are skipped (sentinel rows that carry a
// count in the other field). --bench / --case restrict the comparison.
//
// Exit codes: 0 = no regression, 1 = at least one regression,
// 2 = usage or I/O error. Documented in EXPERIMENTS.md.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace {

struct Record {
  std::string bench;
  std::string case_name;
  double seconds = 0;
  double throughput = 0;
};

// Minimal scanner for the writer's flat format: finds each "key":
// occurrence and reads the quoted-string or number value after it. Not a
// general JSON parser, but the producer is ours and the format is fixed.
bool ParseRecords(const std::string& path, std::vector<Record>* out) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n", path.c_str());
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  auto read_string = [&](size_t pos, std::string* value) -> bool {
    pos = text.find('"', pos);
    if (pos == std::string::npos) return false;
    std::string result;
    for (size_t i = pos + 1; i < text.size(); ++i) {
      if (text[i] == '\\' && i + 1 < text.size()) {
        result += text[++i];
      } else if (text[i] == '"') {
        *value = std::move(result);
        return true;
      } else {
        result += text[i];
      }
    }
    return false;
  };

  size_t pos = 0;
  while ((pos = text.find("{", pos)) != std::string::npos) {
    size_t end = text.find("}", pos);
    if (end == std::string::npos) break;
    Record record;
    bool ok = true;
    auto field = [&](const char* key, auto reader) {
      size_t at = text.find(std::string("\"") + key + "\":", pos);
      if (at == std::string::npos || at > end) {
        ok = false;
        return;
      }
      reader(at + std::strlen(key) + 3);
    };
    field("bench", [&](size_t at) {
      ok = ok && read_string(at, &record.bench);
    });
    field("case", [&](size_t at) {
      ok = ok && read_string(at, &record.case_name);
    });
    field("seconds", [&](size_t at) {
      record.seconds = std::strtod(text.c_str() + at, nullptr);
    });
    field("throughput", [&](size_t at) {
      record.throughput = std::strtod(text.c_str() + at, nullptr);
    });
    if (!ok) {
      std::fprintf(stderr, "bench_compare: malformed record in %s\n",
                   path.c_str());
      return false;
    }
    out->push_back(std::move(record));
    pos = end + 1;
  }
  return true;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: bench_compare BASELINE.json CURRENT.json\n"
      "         [--metric=seconds|throughput] [--threshold=0.10]\n"
      "         [--bench=NAME] [--case=SUBSTR]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string metric = "seconds";
  std::string bench_filter;
  std::string case_filter;
  double threshold = 0.10;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--metric=", 0) == 0) {
      metric = arg.substr(9);
    } else if (arg.rfind("--threshold=", 0) == 0) {
      threshold = std::strtod(arg.c_str() + 12, nullptr);
    } else if (arg.rfind("--bench=", 0) == 0) {
      bench_filter = arg.substr(8);
    } else if (arg.rfind("--case=", 0) == 0) {
      case_filter = arg.substr(7);
    } else if (arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2 ||
      (metric != "seconds" && metric != "throughput") || threshold <= 0) {
    return Usage();
  }

  std::vector<Record> baseline;
  std::vector<Record> current;
  if (!ParseRecords(paths[0], &baseline) ||
      !ParseRecords(paths[1], &current)) {
    return 2;
  }

  std::map<std::pair<std::string, std::string>, const Record*> by_key;
  for (const Record& record : baseline) {
    by_key[{record.bench, record.case_name}] = &record;
  }

  const bool lower_is_better = metric == "seconds";
  size_t compared = 0;
  size_t regressions = 0;
  for (const Record& record : current) {
    if (!bench_filter.empty() && record.bench != bench_filter) continue;
    if (!case_filter.empty() &&
        record.case_name.find(case_filter) == std::string::npos) {
      continue;
    }
    auto it = by_key.find({record.bench, record.case_name});
    if (it == by_key.end()) continue;  // New case; nothing to compare.
    double base = lower_is_better ? it->second->seconds
                                  : it->second->throughput;
    double cur = lower_is_better ? record.seconds : record.throughput;
    if (base <= 0) continue;  // Sentinel/count-only rows.
    ++compared;
    double ratio = cur / base;
    bool regressed = lower_is_better ? ratio > 1.0 + threshold
                                     : ratio < 1.0 - threshold;
    if (regressed) {
      ++regressions;
      std::printf("REGRESSION %s/%s: %s %.6g -> %.6g (%+.1f%%)\n",
                  record.bench.c_str(), record.case_name.c_str(),
                  metric.c_str(), base, cur, 100.0 * (ratio - 1.0));
    }
  }
  std::printf(
      "bench_compare: %zu case(s) compared on %s, threshold %.0f%%, "
      "%zu regression(s)\n",
      compared, metric.c_str(), 100.0 * threshold, regressions);
  if (compared == 0) {
    std::fprintf(stderr,
                 "bench_compare: no overlapping cases; check filters "
                 "and inputs\n");
    return 2;
  }
  return regressions > 0 ? 1 : 0;
}

// One-shot client for the `tpiin serve` daemon: connects, sends one
// request line, prints the response and exits.
//
//   tpiin_client --port=PORT [--host=ADDR] 'groups?company=C0017'
//   tpiin_client --port=PORT '{"verb": "explain", "company": "C0017"}'
//
// By default the response *payload* is printed raw to stdout (so
// `tpiin_client ... groups` emits the exact susGroup.txt bytes and CI
// can diff it against the batch artifact); --raw prints the full JSON
// response line instead. Exit code: 0 for status ok, 2 for degraded,
// 3 for busy, 1 for error (server-side or transport).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/flags.h"
#include "serve/protocol.h"

namespace {

int Fail(const char* what, const std::string& detail) {
  std::fprintf(stderr, "tpiin_client: %s: %s\n", what, detail.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  tpiin::FlagParser flags;
  flags.DefineString("host", "127.0.0.1", "server address");
  flags.DefineInt64("port", 0, "server port (required)");
  flags.DefineBool("raw", false,
                   "print the full JSON response line, not the payload");
  flags.DefineInt64("timeout-ms", 60000, "receive timeout");
  tpiin::Status status = flags.Parse(argc, argv);
  if (!status.ok()) return Fail("flags", status.ToString());
  if (flags.GetInt64("port") <= 0 || flags.GetInt64("port") > 65535 ||
      flags.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: tpiin_client --port=PORT [--host=ADDR] [--raw] "
                 "REQUEST\n"
                 "  REQUEST is one protocol line, e.g. 'healthz',\n"
                 "  'groups?company=C0017' or '{\"verb\": \"stats\"}'\n");
    return 1;
  }
  const std::string& request = flags.positional()[0];

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port =
      htons(static_cast<uint16_t>(flags.GetInt64("port")));
  if (inet_pton(AF_INET, flags.GetString("host").c_str(), &addr.sin_addr) !=
      1) {
    return Fail("host", flags.GetString("host"));
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Fail("socket", std::strerror(errno));
  struct timeval tv;
  tv.tv_sec = flags.GetInt64("timeout-ms") / 1000;
  tv.tv_usec = (flags.GetInt64("timeout-ms") % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
              sizeof(addr)) != 0) {
    close(fd);
    return Fail("connect", std::strerror(errno));
  }

  std::string line = request;
  line += '\n';
  size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n = send(fd, line.data() + sent, line.size() - sent, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      close(fd);
      return Fail("send", std::strerror(errno));
    }
    sent += static_cast<size_t>(n);
  }

  std::string reply;
  char chunk[4096];
  while (reply.find('\n') == std::string::npos) {
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      close(fd);
      return Fail("recv", std::strerror(errno));
    }
    reply.append(chunk, static_cast<size_t>(n));
  }
  close(fd);
  const size_t newline = reply.find('\n');
  if (newline == std::string::npos) {
    return Fail("recv", "connection closed before a full response line");
  }
  reply.resize(newline);

  if (flags.GetBool("raw")) {
    std::fwrite(reply.data(), 1, reply.size(), stdout);
    std::fputc('\n', stdout);
  }
  tpiin::Result<tpiin::Response> parsed = tpiin::ParseResponseLine(reply);
  if (!parsed.ok()) return Fail("response", parsed.status().ToString());
  if (!flags.GetBool("raw")) {
    if (parsed->status == "ok" || parsed->status == "degraded") {
      std::fwrite(parsed->payload.data(), 1, parsed->payload.size(), stdout);
    } else {
      std::fprintf(stderr, "tpiin_client: %s: %s\n", parsed->status.c_str(),
                   parsed->error.c_str());
    }
  }
  if (parsed->status == "ok") return 0;
  if (parsed->status == "degraded") return 2;
  if (parsed->status == "busy") return 3;
  return 1;
}

// Client for the `tpiin serve` daemon.
//
// One-shot (default): connects, sends one request line, prints the
// response and exits.
//
//   tpiin_client --port=PORT [--host=ADDR] 'groups?company=C0017'
//   tpiin_client --port=PORT '{"verb": "explain", "company": "C0017"}'
//
// By default the response *payload* is printed raw to stdout (so
// `tpiin_client ... groups` emits the exact susGroup.txt bytes and CI
// can diff it against the batch artifact); --raw prints the full JSON
// response line instead. Exit code: 0 for status ok, 2 for degraded,
// 3 for busy, 1 for error (server-side or transport).
//
// --retries=N retries the two transient outcomes — connect refusal
// (daemon not up yet, listen backlog full) and a `busy` response
// (admission control at capacity) — with exponential backoff plus
// ±25% jitter starting at --backoff-ms, so N scripted clients hitting
// a saturated daemon spread out instead of stampeding in lockstep.
// Definite outcomes (ok, degraded, error) are never retried.
//
// Watch mode: --watch=MS polls the `metrics` verb over one persistent
// connection (reconnecting if the daemon's idle timeout closes it) and
// renders a one-line summary per tick — for eyeballing a running
// daemon:
//
//   tpiin_client --port=PORT --watch=1000 [--watch-count=N]

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "common/flags.h"
#include "serve/protocol.h"

namespace {

int Fail(const char* what, const std::string& detail) {
  std::fprintf(stderr, "tpiin_client: %s: %s\n", what, detail.c_str());
  return 1;
}

/// Connects with the given receive timeout; -1 on failure (*error set).
int ConnectTo(const std::string& host, int64_t port, int64_t timeout_ms,
              std::string* error) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    *error = "bad host: " + host;
    return -1;
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    *error = std::strerror(errno);
    return -1;
  }
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
              sizeof(addr)) != 0) {
    *error = std::strerror(errno);
    close(fd);
    return -1;
  }
  return fd;
}

/// Sends one request line and reads one response line. False on any
/// transport failure (the caller reconnects or reports).
bool RoundTrip(int fd, const std::string& request, std::string* reply,
               std::string* error) {
  std::string line = request;
  line += '\n';
  size_t sent = 0;
  while (sent < line.size()) {
    const ssize_t n = send(fd, line.data() + sent, line.size() - sent, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = std::string("send: ") + std::strerror(errno);
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  reply->clear();
  char chunk[4096];
  while (reply->find('\n') == std::string::npos) {
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) {
      *error = "connection closed before a full response line";
      return false;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      *error = std::string("recv: ") + std::strerror(errno);
      return false;
    }
    reply->append(chunk, static_cast<size_t>(n));
  }
  reply->resize(reply->find('\n'));
  return true;
}

/// Label-free samples of a Prometheus text payload: "name value" lines
/// (comments and labeled samples like _bucket{le=...} are skipped —
/// the watch line only needs the scalar families).
std::map<std::string, double> ParsePrometheusScalars(
    const std::string& text) {
  std::map<std::string, double> out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find('\n', pos);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(pos, end - pos);
    pos = end + 1;
    if (line.empty() || line[0] == '#') continue;
    if (line.find('{') != std::string::npos) continue;
    const size_t space = line.find(' ');
    if (space == std::string::npos) continue;
    out[line.substr(0, space)] =
        std::strtod(line.c_str() + space + 1, nullptr);
  }
  return out;
}

double Get(const std::map<std::string, double>& m, const std::string& key) {
  auto it = m.find(key);
  return it == m.end() ? 0.0 : it->second;
}

/// One watch tick's line: uptime, request totals (and the delta since
/// the previous tick), connections, RSS, and the busiest verb's latency
/// percentiles.
void PrintWatchLine(int64_t tick, const std::map<std::string, double>& m,
                    double prev_requests, bool have_prev) {
  const double requests = Get(m, "tpiin_serve_requests_total");
  std::string delta;
  if (have_prev) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " (+%.0f)", requests - prev_requests);
    delta = buf;
  }
  // The busiest verb carries the representative latency numbers.
  const std::string prefix = "tpiin_serve_latency_us_";
  std::string busiest;
  double busiest_count = 0;
  for (const auto& [name, value] : m) {
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    const std::string suffix = "_count";
    if (name.size() <= prefix.size() + suffix.size()) continue;
    if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) !=
        0) {
      continue;
    }
    const std::string verb = name.substr(
        prefix.size(), name.size() - prefix.size() - suffix.size());
    if (value > busiest_count) {
      busiest_count = value;
      busiest = verb;
    }
  }
  std::string latency;
  if (!busiest.empty()) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), " | %s n=%.0f p50=%.0fus p99=%.0fus",
                  busiest.c_str(), busiest_count,
                  Get(m, prefix + busiest + "_p50"),
                  Get(m, prefix + busiest + "_p99"));
    latency = buf;
  }
  std::printf(
      "tick %lld | up %.1fs | req %.0f%s ok=%.0f deg=%.0f busy=%.0f "
      "err=%.0f | conn=%.0f inflight=%.0f | rss %.1f MB%s\n",
      static_cast<long long>(tick), Get(m, "tpiin_serve_uptime_ms") / 1e3,
      requests, delta.c_str(), Get(m, "tpiin_serve_requests_ok_total"),
      Get(m, "tpiin_serve_requests_degraded_total"),
      Get(m, "tpiin_serve_requests_busy_total"),
      Get(m, "tpiin_serve_requests_errors_total"),
      Get(m, "tpiin_serve_connections_active"),
      Get(m, "tpiin_serve_inflight"),
      Get(m, "tpiin_process_current_rss_bytes") / (1024.0 * 1024.0),
      latency.c_str());
  std::fflush(stdout);
}

/// Sleep before retry attempt N (0-based): backoff_ms doubled per
/// attempt, capped at 5s, with ±25% jitter so a fleet of scripted
/// clients that all hit `busy` at once doesn't retry in lockstep.
void BackoffSleep(int64_t backoff_ms, int64_t attempt, std::mt19937* rng) {
  double delay = static_cast<double>(backoff_ms);
  for (int64_t i = 0; i < attempt && delay < 5000.0; ++i) delay *= 2.0;
  delay = std::min(delay, 5000.0);
  std::uniform_real_distribution<double> jitter(0.75, 1.25);
  delay *= jitter(*rng);
  usleep(static_cast<useconds_t>(std::max(1.0, delay) * 1000.0));
}

int RunWatch(const std::string& host, int64_t port, int64_t timeout_ms,
             int64_t watch_ms, int64_t watch_count) {
  int fd = -1;
  std::string error;
  double prev_requests = 0;
  bool have_prev = false;
  for (int64_t tick = 1; watch_count <= 0 || tick <= watch_count; ++tick) {
    if (fd < 0) {
      fd = ConnectTo(host, port, timeout_ms, &error);
      if (fd < 0) return Fail("connect", error);
    }
    std::string reply;
    if (!RoundTrip(fd, "metrics", &reply, &error)) {
      // The daemon's idle timeout may have severed us between ticks;
      // one reconnect per tick keeps the watch alive across it.
      close(fd);
      fd = ConnectTo(host, port, timeout_ms, &error);
      if (fd < 0) return Fail("reconnect", error);
      if (!RoundTrip(fd, "metrics", &reply, &error)) {
        close(fd);
        return Fail("metrics", error);
      }
    }
    tpiin::Result<tpiin::Response> parsed = tpiin::ParseResponseLine(reply);
    if (!parsed.ok()) {
      close(fd);
      return Fail("response", parsed.status().ToString());
    }
    if (!parsed->ok()) {
      close(fd);
      return Fail("metrics verb", parsed->error);
    }
    const std::map<std::string, double> m =
        ParsePrometheusScalars(parsed->payload);
    PrintWatchLine(tick, m, prev_requests, have_prev);
    prev_requests = Get(m, "tpiin_serve_requests_total");
    have_prev = true;
    if (watch_count > 0 && tick == watch_count) break;
    usleep(static_cast<useconds_t>(watch_ms) * 1000);
  }
  if (fd >= 0) close(fd);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  tpiin::FlagParser flags;
  flags.DefineString("host", "127.0.0.1", "server address");
  flags.DefineInt64("port", 0, "server port (required)");
  flags.DefineBool("raw", false,
                   "print the full JSON response line, not the payload");
  flags.DefineInt64("timeout-ms", 60000, "receive timeout");
  flags.DefineInt64("retries", 0,
                    "retry connect refusal and busy responses up to N "
                    "times (one-shot mode only)");
  flags.DefineInt64("backoff-ms", 100,
                    "initial retry backoff; doubles per attempt with "
                    "jitter, capped at 5000 ms");
  flags.DefineInt64("watch", 0,
                    "poll the metrics verb every N ms and print one "
                    "summary line per tick (0 = one-shot)");
  flags.DefineInt64("watch-count", 0,
                    "stop after N watch ticks (0 = until killed)");
  tpiin::Status status = flags.Parse(argc, argv);
  if (!status.ok()) return Fail("flags", status.ToString());
  const int64_t port = flags.GetInt64("port");
  const bool watch = flags.GetInt64("watch") > 0;
  if (port <= 0 || port > 65535 ||
      flags.positional().size() != (watch ? 0u : 1u)) {
    std::fprintf(
        stderr,
        "usage: tpiin_client --port=PORT [--host=ADDR] [--raw] REQUEST\n"
        "       tpiin_client --port=PORT --watch=MS [--watch-count=N]\n"
        "  REQUEST is one protocol line, e.g. 'healthz',\n"
        "  'groups?company=C0017' or '{\"verb\": \"stats\"}'\n");
    return 1;
  }
  if (watch) {
    return RunWatch(flags.GetString("host"), port,
                    flags.GetInt64("timeout-ms"), flags.GetInt64("watch"),
                    flags.GetInt64("watch-count"));
  }
  const std::string& request = flags.positional()[0];
  const int64_t retries = std::max<int64_t>(0, flags.GetInt64("retries"));
  const int64_t backoff_ms =
      std::max<int64_t>(1, flags.GetInt64("backoff-ms"));
  std::mt19937 rng(static_cast<uint32_t>(std::time(nullptr)) ^
                   static_cast<uint32_t>(getpid()));

  std::string error;
  std::string reply;
  tpiin::Result<tpiin::Response> parsed =
      tpiin::Status::Internal("no attempt made");
  for (int64_t attempt = 0;; ++attempt) {
    const int fd = ConnectTo(flags.GetString("host"), port,
                             flags.GetInt64("timeout-ms"), &error);
    if (fd < 0) {
      // Connect refusal is the classic transient: the daemon is still
      // loading its snapshot, or the listen backlog overflowed.
      if (attempt < retries) {
        BackoffSleep(backoff_ms, attempt, &rng);
        continue;
      }
      return Fail("connect", error);
    }
    if (!RoundTrip(fd, request, &reply, &error)) {
      close(fd);
      return Fail("round trip", error);
    }
    close(fd);
    parsed = tpiin::ParseResponseLine(reply);
    if (!parsed.ok()) return Fail("response", parsed.status().ToString());
    // `busy` means admission control shed us; every other status is a
    // definite answer (ok/degraded carry a payload, error is final).
    if (parsed->status != "busy" || attempt >= retries) break;
    BackoffSleep(backoff_ms, attempt, &rng);
  }

  if (flags.GetBool("raw")) {
    std::fwrite(reply.data(), 1, reply.size(), stdout);
    std::fputc('\n', stdout);
  } else {
    if (parsed->status == "ok" || parsed->status == "degraded") {
      std::fwrite(parsed->payload.data(), 1, parsed->payload.size(), stdout);
    } else {
      std::fprintf(stderr, "tpiin_client: %s: %s\n", parsed->status.c_str(),
                   parsed->error.c_str());
    }
  }
  if (parsed->status == "ok") return 0;
  if (parsed->status == "degraded") return 2;
  if (parsed->status == "busy") return 3;
  return 1;
}

// The `tpiin` command-line tool: generate, fuse, detect, inspect and
// export taxpayer interest interacted networks. See `tpiin help`.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  tpiin::Status status = tpiin::RunCli(args, std::cout);
  if (!status.ok()) {
    std::fprintf(stderr, "tpiin: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

// The `tpiin` command-line tool: generate, fuse, detect, inspect and
// export taxpayer interest interacted networks. See `tpiin help`.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.h"
#include "common/failpoint.h"

int main(int argc, char** argv) {
  // The TPIIN_FAILPOINTS environment variable is honored by the binary
  // only (not by RunCli, so in-process tests control their own
  // registry); a --failpoints flag overrides it.
  tpiin::Status env = tpiin::Failpoints::ConfigureFromEnv();
  if (!env.ok()) {
    std::fprintf(stderr, "tpiin: TPIIN_FAILPOINTS: %s\n",
                 env.ToString().c_str());
    return 1;
  }
  std::vector<std::string> args(argv + 1, argv + argc);
  int exit_code = 0;
  tpiin::Status status = tpiin::RunCli(args, std::cout, &exit_code);
  if (!status.ok()) {
    std::fprintf(stderr, "tpiin: %s\n", status.ToString().c_str());
  }
  return exit_code;
}
